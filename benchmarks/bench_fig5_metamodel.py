"""Experiment E5 — the specification metamodel of Fig. 5.

Verifies the metamodel classes/fields/relations exist as drawn (Task,
Processor, Message, SourceCode, EzRTSpec, SchedulingType with the
``precedesTasks``/``excludesTasks``/``precedesMsgs``/``precedes``
relations) and measures construction/validation throughput on large
specifications.
"""

from repro.spec import (
    EzRTSpec,
    Message,
    Processor,
    SchedulingType,
    SourceCode,
    SpecBuilder,
    Task,
    validate_spec,
)


def test_metamodel_matches_figure5(report):
    # class fields, as drawn
    task_fields = {
        "name", "period", "phase", "energy", "release",
        "computation", "deadline", "scheduling", "identifier",
    }
    assert task_fields <= set(Task.__dataclass_fields__)
    assert {"name", "identifier"} <= set(
        Processor.__dataclass_fields__
    )
    message_fields = {
        "name", "bus", "grant_bus", "communication", "identifier",
    }
    assert message_fields <= set(Message.__dataclass_fields__)
    assert {"content", "identifier"} <= set(
        SourceCode.__dataclass_fields__
    )
    assert {"name", "disp_oveh", "identifier"} <= set(
        EzRTSpec.__dataclass_fields__
    )
    # relations, as drawn
    relation_fields = {
        "precedes_tasks", "excludes_tasks", "precedes_msgs",
    }
    assert relation_fields <= set(Task.__dataclass_fields__)
    assert "precedes" in Message.__dataclass_fields__
    # the enumeration
    assert {e.value for e in SchedulingType} == {"NP", "P"}
    report("E5", "metamodel classes", 6, 6)
    report("E5", "scheduling enum", "{NP, P}",
           "{" + ", ".join(sorted(e.value for e in SchedulingType)) + "}")


def _large_spec(n: int) -> EzRTSpec:
    builder = SpecBuilder("large").processor("proc0")
    for i in range(n):
        builder.task(
            f"T{i}",
            computation=1 + i % 4,
            deadline=20,
            period=20,
            energy=i,
            scheduling="P" if i % 3 else "NP",
            code=f"work_{i}();",
        )
    for i in range(0, n - 1, 2):
        builder.precedence(f"T{i}", f"T{i + 1}")
    return builder.build(validate=False)


def bench_spec_construction_100_tasks(benchmark):
    spec = benchmark(_large_spec, 100)
    assert len(spec.tasks) == 100


def bench_spec_validation_100_tasks(benchmark):
    spec = _large_spec(100)
    problems = benchmark(validate_spec, spec)
    assert problems == []


def bench_relation_queries(benchmark):
    spec = _large_spec(100)

    def query():
        return (
            spec.precedence_pairs(),
            spec.exclusion_pairs(),
            spec.total_utilization(),
        )

    precedence, exclusion, utilization = benchmark(query)
    assert len(precedence) == 50
    assert exclusion == []
    assert utilization > 0
