"""Experiment E3 — the precedence relation model of Fig. 3.

The figure draws the expanded-block net for T1 PRECEDES T2 with
intervals tr1 [0,85], tc1 [15,15], td1 [100,100], tr2 [0,130],
tc2 [20,20], td2 [150,150], arrivals [250,250] and a two-instance
schedule period.  The bench verifies the structure, synthesises the
schedule and checks the ordering property the relation is for.
"""

import pytest

from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import fig3_precedence
from repro.tpn import TimeInterval


@pytest.fixture(scope="module")
def expanded_model():
    return compose(
        fig3_precedence(), ComposerOptions(style=BlockStyle.EXPANDED)
    )


def test_fig3_structure(expanded_model, report):
    net = expanded_model.net
    checks = {
        "tr_T1": TimeInterval(0, 85),
        "tc_T1": TimeInterval(15, 15),
        "td_T1": TimeInterval(100, 100),
        "tr_T2": TimeInterval(0, 130),
        "tc_T2": TimeInterval(20, 20),
        "td_T2": TimeInterval(150, 150),
        "ta_T1": TimeInterval(250, 250),
        "ta_T2": TimeInterval(250, 250),
    }
    for name, interval in checks.items():
        assert net.transition(name).interval == interval, name
    assert net.has_place("pprec_T1_T2")
    report("E3", "figure intervals reproduced", "8/8", "8/8")
    report("E3", "precedence place", "pprec12", "pprec_T1_T2")


def bench_fig3_composition(benchmark):
    model = benchmark(
        compose,
        fig3_precedence(),
        ComposerOptions(style=BlockStyle.EXPANDED),
    )
    assert model.schedule_period == 500


def bench_fig3_schedule(benchmark, expanded_model, report):
    result = benchmark(find_schedule, expanded_model)
    assert result.feasible
    schedule = schedule_from_result(expanded_model, result)
    for k in (1, 2):
        t1 = schedule.segments_of("T1", k)
        t2 = schedule.segments_of("T2", k)
        assert t2[0].start >= t1[-1].end
    report("E3", "T2 starts after T1 (per instance)", "yes", "yes")
    report("E3", "states visited", "n/a",
           result.stats.states_visited)
