"""Ablation A1 — the partial-order state-space reduction.

The paper: "the proposed method adopts a partial-order minimization
technique [Lilius] in order to prune the state space".  This bench
measures visited states and wall-clock with the reduction on and off —
on the mine pump and on a mid-size random set — quantifying how much
the reduction contributes to keeping the search near the minimum.
"""

import pytest

from repro.blocks import compose
from repro.scheduler import SchedulerConfig, find_schedule
from repro.spec import mine_pump
from repro.workloads import random_task_set


@pytest.fixture(scope="module")
def mine_pump_model():
    return compose(mine_pump())


@pytest.fixture(scope="module")
def random_model():
    return compose(random_task_set(6, 0.5, seed=5))


def bench_mine_pump_reduction_on(benchmark, mine_pump_model, report):
    result = benchmark(
        find_schedule,
        mine_pump_model,
        SchedulerConfig(partial_order=True),
    )
    assert result.feasible
    report("A1", "mine pump states (reduction ON)", "3268 (paper)",
           result.stats.states_visited)
    report("A1", "reductions applied", "n/a",
           result.stats.reductions)


def bench_mine_pump_reduction_off(benchmark, mine_pump_model, report):
    result = benchmark(
        find_schedule,
        mine_pump_model,
        SchedulerConfig(partial_order=False),
    )
    assert result.feasible
    report("A1", "mine pump states (reduction OFF)", "n/a",
           result.stats.states_visited)


def bench_random_set_reduction_on(benchmark, random_model):
    result = benchmark(
        find_schedule,
        random_model,
        SchedulerConfig(partial_order=True),
    )
    assert result.feasible


def bench_random_set_reduction_off(benchmark, random_model):
    result = benchmark(
        find_schedule,
        random_model,
        SchedulerConfig(partial_order=False),
    )
    assert result.feasible


def test_reduction_never_hurts_state_count(
    mine_pump_model, random_model, report
):
    for name, model in (
        ("mine-pump", mine_pump_model),
        ("random", random_model),
    ):
        on = find_schedule(model, SchedulerConfig(partial_order=True))
        off = find_schedule(
            model, SchedulerConfig(partial_order=False)
        )
        assert on.feasible and off.feasible
        assert on.stats.states_visited <= off.stats.states_visited
        report(
            "A1",
            f"{name}: ON vs OFF states",
            "ON <= OFF",
            f"{on.stats.states_visited} <= "
            f"{off.stats.states_visited}",
        )


def _infeasible_spec():
    """A provably infeasible set: the 47-unit non-preemptive block
    always swallows a whole window of the period-20 task."""
    from repro.spec import SpecBuilder

    return (
        SpecBuilder("impossible")
        .task("TICK", computation=1, deadline=20, period=20)
        .task("MID", computation=5, deadline=40, period=40)
        .task("BLOCK", computation=47, deadline=200, period=200)
        .build()
    )


def bench_infeasibility_proof_reduction_on(benchmark, report):
    """Exhaustive exploration (infeasibility proof) is where the
    reduction pays: fewer interleavings to rule out."""
    model = compose(_infeasible_spec())
    result = benchmark(
        find_schedule, model, SchedulerConfig(partial_order=True)
    )
    assert not result.feasible and not result.exhausted
    report("A1", "infeasibility proof states (ON)", "n/a",
           result.stats.states_visited)


def bench_infeasibility_proof_reduction_off(benchmark, report):
    model = compose(_infeasible_spec())
    result = benchmark(
        find_schedule, model, SchedulerConfig(partial_order=False)
    )
    assert not result.feasible and not result.exhausted
    report("A1", "infeasibility proof states (OFF)", "n/a",
           result.stats.states_visited)
