"""Shared helpers for the benchmark harness.

Every bench module reproduces one table/figure of the paper (DESIGN.md
experiment index).  Benches both *measure* (via pytest-benchmark) and
*verify* (assertions on the reproduced numbers); the printed rows are
collected in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def paper_row(label: str, paper: object, measured: object) -> str:
    """Format one paper-vs-measured comparison row."""
    return f"  {label:<34} paper: {paper!s:>12}  measured: {measured!s:>12}"


@pytest.fixture(scope="session")
def report():
    """Collect and print paper-vs-measured rows at session end."""
    rows: list[str] = []

    def add(experiment: str, label: str, paper, measured) -> None:
        rows.append(f"[{experiment}] " + paper_row(label, paper, measured))

    yield add
    if rows:
        header = [
            "=" * 72,
            "paper-vs-measured summary",
            "=" * 72,
        ]
        body = header + rows
        print("\n" + "\n".join(body))
        # persist for EXPERIMENTS.md regardless of output capturing
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmark_report.txt"
        )
        with open(os.path.abspath(path), "a", encoding="utf-8") as fh:
            fh.write("\n".join(body) + "\n")
