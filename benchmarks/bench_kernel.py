"""Experiment KN1 — packed kernel throughput: the 3× hot-path target.

Acceptance benchmark of the packed search kernel (ISSUE 7,
:mod:`repro.tpn.kernel`).  Every workload runs on the reference, the
incremental and the kernel engine, strictly interleaved, and the bench
enforces in order of importance:

1. **Exactness** (hard gate): byte-identical firing schedules and
   identical deterministic ``SearchStats`` counters across all three
   discrete engines on every workload.  A perf win that changes the
   search is a bug.
2. **The 3× target** (hard gate with the compiled core): aggregate
   states/sec of the kernel engine over the whole paper + scaling +
   grid sweep at least :data:`TARGET_SPEEDUP` times the reference
   engine — the ROADMAP number the incremental engine alone never
   reached.  Each family additionally has a noise-proof regression
   floor (:data:`MIN_FAMILY_SPEEDUP`).
3. **Pure fallback** (hard floor): with the compiled core disabled the
   packed engine must still not lose to the reference engine on
   aggregate (:data:`MIN_PURE_SPEEDUP`); its ratio is recorded so the
   fallback's trajectory is tracked PR over PR.
4. **No-regression floor vs the stored baseline**: the kernel engine's
   absolute aggregate states/sec must stay within
   :data:`MAX_BASELINE_REGRESSION` of the frozen *incremental* hot-path
   rate in ``benchmarks/BASELINE_scheduler.json`` — the same floor the
   parallel-DFS bench applies to the incremental engine, extended to
   the kernel: a kernel that falls back to pre-kernel throughput is a
   regression even if it still leads the in-process reference run
   (asserted only when the stored baseline was measured on a
   comparable interpreter/machine; the kernel currently clears it at
   ~1.5-1.9x).

The sweep deliberately mixes search shapes: the paper case studies
(exactness on real models, mine-pump dominating the timing), a
``max_states``-bounded scaling family (the budget makes the visited
count — and thus the measured work — exactly reproducible even though
the models are infeasible to exhaust), and a bounded campaign-grid
family with preemption.  Bounded runs keep every engine's per-state
work identical, so states/sec ratios compare like for like.

Timing methodology (as in ``bench_scheduler_hotpath``): engines run
strictly interleaved, each workload takes the minimum of
:data:`ROUNDS` rounds, so host noise hits all engines alike.

Results are written to ``BENCH_kernel.json`` at the repository root;
CI builds the extension eagerly, runs this bench as a gate and uploads
the JSON as an artifact (plus a second pure-mode job with
``EZRT_PURE=1``).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time

from repro.blocks import compose
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.spec import paper_examples
from repro.tpn import _kernelc
from repro.workloads import random_task_set

#: ROADMAP target, a hard gate when the compiled core is active.
TARGET_SPEEDUP = 3.0
#: Per-family noise-proof floor (compiled core): the kernel engine has
#: cleared 3× on every family measured, but the paper family's margin
#: is thin enough that a shared-core hiccup should not fail CI.
MIN_FAMILY_SPEEDUP = 2.5
#: Pure-Python fallback floor: packed buffers without the C core must
#: still beat the dense reference engine on aggregate.
MIN_PURE_SPEEDUP = 1.0
#: Floor against the stored absolute baseline (same contract as the
#: parallel-DFS bench's hot-path floor).
MAX_BASELINE_REGRESSION = 0.95

ENGINES = ("reference", "incremental", "kernel")
ROUNDS = 7
JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_kernel.json"
)
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BASELINE_scheduler.json"
)


def _workloads():
    for name, spec in paper_examples().items():
        yield f"paper:{name}", spec, "paper", {}
    # budget-bounded scaling sweep: high utilisation + tight deadlines
    # make the searches exhaust the budget, so every engine visits the
    # same `max_states` states and the timing measures the hot loop
    for n in (8, 16, 24):
        yield (
            f"scaling:n{n}",
            random_task_set(
                n,
                total_utilization=0.9,
                seed=100 + n,
                deadline_slack=0.7,
                period_grid=(20, 40, 80),
            ),
            "scaling",
            {"max_states": 3000},
        )
    yield (
        "scaling:n32",
        random_task_set(
            32,
            total_utilization=0.4,
            seed=132,
            period_grid=(20, 40, 80),
        ),
        "scaling",
        {"max_states": 6000},
    )
    for n, u, seed in ((8, 0.8, 5), (12, 0.7, 7)):
        yield (
            f"grid:n{n}-u{u}-s{seed}",
            random_task_set(
                n,
                total_utilization=u,
                seed=seed,
                preemptive_fraction=0.5,
                deadline_slack=0.75,
                period_grid=(10, 20, 40),
            ),
            "grid",
            {"max_states": 4000},
        )


def _timed_search(net, engine, limits):
    scheduler = PreRuntimeScheduler(
        net, SchedulerConfig(**limits), engine=engine
    )
    # collector pauses scale with whatever the rest of the process has
    # allocated (other benches in the same run), which would punish the
    # fastest engine the hardest — time every engine collector-free
    gc.collect()
    reenable = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = scheduler.search()
        seconds = time.perf_counter() - started
    finally:
        if reenable:
            gc.enable()
    return result, seconds


def _deterministic_stats(result):
    return {
        name: value
        for name, value in result.stats.as_dict().items()
        if name not in ("elapsed_seconds", "states_per_second")
    }


def _measure(net, limits):
    """Interleaved min-of-N timing for the three engines on one net."""
    results = {}
    for engine in ENGINES:  # warm-up + exactness outputs
        results[engine], _ = _timed_search(net, engine, limits)
    best = {engine: float("inf") for engine in ENGINES}
    for _ in range(ROUNDS):
        for engine in ENGINES:
            _, seconds = _timed_search(net, engine, limits)
            best[engine] = min(best[engine], seconds)
    return results, best


def _run_suite():
    rows = []
    for name, spec, family, limits in _workloads():
        net = compose(spec).compiled()
        results, best = _measure(net, limits)

        # -- exactness gate ------------------------------------------
        ref = results["reference"]
        for engine in ("incremental", "kernel"):
            other = results[engine]
            assert (
                other.firing_schedule == ref.firing_schedule
            ), f"{name}: {engine} produced a different schedule"
            assert _deterministic_stats(other) == (
                _deterministic_stats(ref)
            ), f"{name}: {engine} disagrees on search statistics"

        visited = ref.stats.states_visited
        rows.append(
            {
                "workload": name,
                "family": family,
                "transitions": net.num_transitions,
                "places": net.num_places,
                "feasible": ref.feasible,
                "states_visited": visited,
                "reference_seconds": best["reference"],
                "incremental_seconds": best["incremental"],
                "kernel_seconds": best["kernel"],
                "kernel_states_per_sec": visited / best["kernel"],
                "speedup_vs_reference": best["reference"]
                / best["kernel"],
                "speedup_vs_incremental": best["incremental"]
                / best["kernel"],
            }
        )
    return rows


def _aggregate(rows, family=None):
    picked = [
        r for r in rows if family is None or r["family"] == family
    ]
    states = sum(r["states_visited"] for r in picked)
    seconds = {
        engine: sum(r[f"{engine}_seconds"] for r in picked)
        for engine in ENGINES
    }
    return {
        "family": family or "all",
        "workloads": len(picked),
        "states_visited": states,
        "reference_states_per_sec": states / seconds["reference"],
        "incremental_states_per_sec": states / seconds["incremental"],
        "kernel_states_per_sec": states / seconds["kernel"],
        "speedup_vs_reference": seconds["reference"]
        / seconds["kernel"],
        "speedup_vs_incremental": seconds["incremental"]
        / seconds["kernel"],
    }


def _baseline():
    """The stored absolute baseline, or ``(None, None)``."""
    path = os.path.abspath(BASELINE_PATH)
    if not os.path.exists(path):
        return None, None
    with open(path, encoding="utf-8") as fh:
        stored = json.load(fh)
    same_python = str(stored.get("python", "")).split(".")[:2] == (
        platform.python_version().split(".")[:2]
    )
    same_machine = stored.get("machine") in (None, platform.machine())
    return stored, same_python and same_machine


def test_kernel_throughput(report):
    native = _kernelc.available()
    rows = _run_suite()
    families = ("paper", "scaling", "grid")
    aggregates = {f: _aggregate(rows, f) for f in families}
    overall = _aggregate(rows)
    stored_baseline, comparable = _baseline()
    baseline_ratio = None
    if stored_baseline is not None:
        baseline_ratio = (
            overall["kernel_states_per_sec"]
            / stored_baseline["states_per_sec"]
        )

    payload = {
        "bench": "kernel",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": ROUNDS,
        "native_core": native,
        "load_error": (
            None if _kernelc.LOAD_ERROR is None
            else str(_kernelc.LOAD_ERROR)
        ),
        "target_speedup": TARGET_SPEEDUP,
        "min_family_speedup": MIN_FAMILY_SPEEDUP,
        "min_pure_speedup": MIN_PURE_SPEEDUP,
        "target_met": overall["speedup_vs_reference"]
        >= TARGET_SPEEDUP,
        "baseline_ratio": baseline_ratio,
        "baseline_comparable": comparable,
        "rows": rows,
        "aggregates": {**aggregates, "all": overall},
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    core = "native" if native else "pure"
    for row in rows:
        report(
            "KN1",
            f"{row['workload']} kernel ({core}) vs reference",
            "faster",
            f"{row['speedup_vs_reference']:.2f}x "
            f"(vs incremental {row['speedup_vs_incremental']:.2f}x)",
        )
    for family in families:
        agg = aggregates[family]
        report(
            "KN1",
            f"{family} aggregate kernel speedup",
            f">= {MIN_FAMILY_SPEEDUP} (target {TARGET_SPEEDUP})",
            f"{agg['speedup_vs_reference']:.2f}x",
        )
    report(
        "KN1",
        f"overall aggregate kernel ({core}) vs reference",
        f">= {TARGET_SPEEDUP}" if native else f">= {MIN_PURE_SPEEDUP}",
        f"{overall['speedup_vs_reference']:.2f}x "
        f"({overall['kernel_states_per_sec']:,.0f} states/sec)",
    )

    # -- throughput gates --------------------------------------------
    if native:
        assert overall["speedup_vs_reference"] >= TARGET_SPEEDUP, (
            "kernel engine missed the 3x hot-path target: "
            f"{overall['speedup_vs_reference']:.2f}x aggregate"
        )
        for family in families:
            agg = aggregates[family]
            assert (
                agg["speedup_vs_reference"] >= MIN_FAMILY_SPEEDUP
            ), (
                f"kernel engine regressed on the {family} family: "
                f"{agg['speedup_vs_reference']:.2f}x"
            )
        if baseline_ratio is not None and comparable:
            assert baseline_ratio >= MAX_BASELINE_REGRESSION, (
                "kernel aggregate states/sec fell below the stored "
                f"baseline floor: {baseline_ratio:.2f}x of "
                "BASELINE_scheduler.json"
            )
    else:
        assert (
            overall["speedup_vs_reference"] >= MIN_PURE_SPEEDUP
        ), (
            "pure-Python kernel fallback lost to the reference "
            f"engine: {overall['speedup_vs_reference']:.2f}x"
        )


def test_json_artifact_shape():
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_kernel_throughput(lambda *a: None)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "kernel"
    assert payload["rows"], "no benchmark rows recorded"
    for row in payload["rows"]:
        assert row["kernel_states_per_sec"] > 0
        assert row["states_visited"] > 0
    assert set(payload["aggregates"]) == {
        "paper",
        "scaling",
        "grid",
        "all",
    }
