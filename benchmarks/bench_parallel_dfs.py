"""Experiment PD1 — parallel DFS: portfolio racing and work stealing.

Acceptance benchmark of :mod:`repro.scheduler.parallel`.  Two
workload/strategy pairings are measured end-to-end (compose + compile
+ search + reference-replay validation, i.e. exactly what
``ezrt schedule --parallel N`` pays):

1. **Portfolio racing on the hard feasible model**
   (:func:`repro.workloads.hard_portfolio_task_set`): the serial
   default ordering needs ~300k states; alternative orderings reach a
   schedule in a few thousand.  Racing them wins even on a single
   core, because the winner's work is a fraction of the serial work —
   the speedup-vs-workers curve is recorded and the acceptance gate
   (:data:`MIN_SPEEDUP_AT_4`× at 4 workers) is asserted alongside
   verdict parity with the serial search.
2. **Work stealing on an exhaustively-infeasible model**: the subtree
   partition with a shared visited filter must reproduce the serial
   infeasible verdict with bounded duplicated work
   (:data:`MAX_WORKSTEAL_WORK_RATIO`× the serial visited count).  On a
   multi-core host this curve shows wall-clock scaling too; on the
   single-core CI box only the parity and bounded-work properties are
   gated.
3. **Mixed-engine portfolio on the wide-interval race model**
   (:func:`repro.workloads.wide_interval_race_net`, ISSUE 5): a
   ``stateclass:earliest`` slot races the discrete hot path under a
   delay-enumerating configuration.  The discrete state space grows
   with the release-window width while the class graph does not, so
   the dense slot must win the race (gated) — the dense-aware
   portfolio the ROADMAP asked for.  The winning slot is recorded per
   row (``winner_slot``), which is what
   :meth:`repro.scheduler.adaptive.AdaptiveStore.warm_start_from_bench`
   reads to seed future rotations.
4. **Refactor no-regression gate** (ISSUE 5): the aggregate states/sec
   of the refactored incremental adapter, re-measured on the hot-path
   bench's workloads, must stay within
   :data:`MAX_HOTPATH_REGRESSION` of the checked-in
   ``BENCH_scheduler.json`` baseline — the EngineAdapter indirection
   is not allowed to tax the hot loop.

Results land in ``BENCH_parallel.json`` at the repository root; CI
uploads it as an artifact, so the speedup trajectory is tracked PR
over PR.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from repro.blocks import compose
from repro.scheduler import (
    PreRuntimeScheduler,
    SchedulerConfig,
    find_schedule,
    search,
)
from repro.workloads import (
    hard_portfolio_task_set,
    random_task_set,
    wide_interval_race_net,
)

#: Acceptance gate (ISSUE 3): `ezrt schedule --parallel 4` must beat
#: the serial search end-to-end by at least this factor on the hard
#: model.  Measured ~6-12x on a single shared vCPU; 1.8 is the
#: noise-proof floor.
MIN_SPEEDUP_AT_4 = 1.8

#: Work-stealing may duplicate some exploration (lock-free filter
#: claims, frontier overlap) but must stay within this factor of the
#: serial visited count on an exhaustive (infeasible) search.
MAX_WORKSTEAL_WORK_RATIO = 1.25

#: Refactor no-regression floor (ISSUE 5): the incremental adapter's
#: re-measured aggregate states/sec must be at least this fraction of
#: the checked-in ``BENCH_scheduler.json`` aggregate.
MAX_HOTPATH_REGRESSION = 0.95

WORKER_CURVE = (2, 4)
ROUNDS = 2

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)
#: Fresh local hot-path artifact (untracked; preferred when present)…
SCHEDULER_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_scheduler.json"
)
#: …and the tracked pre-refactor snapshot the gate falls back to on a
#: clean checkout (frozen aggregate, see the file's "note" field).
FROZEN_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BASELINE_scheduler.json"
)


def _end_to_end(spec, config):
    """Median-free min-of-N full synthesis latency."""
    times = []
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        model = compose(spec)
        result = find_schedule(model, config)
        times.append(time.perf_counter() - started)
    return result, min(times)


def _portfolio_curve():
    spec = hard_portfolio_task_set()
    serial, serial_s = _end_to_end(spec, SchedulerConfig())
    rows = []
    for workers in WORKER_CURVE:
        result, seconds = _end_to_end(
            spec, SchedulerConfig(parallel=workers)
        )
        assert result.feasible == serial.feasible, (
            f"portfolio verdict diverged at {workers} workers"
        )
        rows.append(
            {
                "workers": workers,
                "seconds": seconds,
                "speedup": serial_s / seconds,
                "winner_policy": result.winner_policy,
                "states_visited": result.stats.states_visited,
                "restarts": result.stats.restarts,
            }
        )
    return {
        "model": spec.name,
        "mode": "portfolio",
        "serial_seconds": serial_s,
        "serial_states_visited": serial.stats.states_visited,
        "feasible": serial.feasible,
        "curve": rows,
    }


def _worksteal_curve():
    # exhaustively infeasible: ~7k states to refute, fully decidable
    spec = random_task_set(6, 0.95, seed=3, deadline_slack=0.6)
    serial, serial_s = _end_to_end(spec, SchedulerConfig())
    assert not serial.feasible and not serial.exhausted
    rows = []
    for workers in WORKER_CURVE:
        config = SchedulerConfig(
            parallel=workers, parallel_mode="worksteal"
        )
        result, seconds = _end_to_end(spec, config)
        assert result.feasible == serial.feasible, (
            f"worksteal verdict diverged at {workers} workers"
        )
        assert not result.exhausted
        rows.append(
            {
                "workers": workers,
                "seconds": seconds,
                "speedup": serial_s / seconds,
                "states_visited": result.stats.states_visited,
                "work_ratio": (
                    result.stats.states_visited
                    / serial.stats.states_visited
                ),
            }
        )
    return {
        "model": spec.name,
        "mode": "worksteal",
        "serial_seconds": serial_s,
        "serial_states_visited": serial.stats.states_visited,
        "feasible": serial.feasible,
        "curve": rows,
    }


def _mixed_engine_curve():
    """Race the dense state-class slot against the discrete hot path.

    The wide-interval race net is exhaustively infeasible under a
    complete (delay-enumerating) search: the discrete engine refutes
    it by visiting every integer release time, the dense slot by a
    width-independent class sweep — first definitive verdict wins.
    The stateclass slot must win (ISSUE 5 acceptance gate).
    """
    net = wide_interval_race_net().compile()
    serial_config = SchedulerConfig(delay_mode="full")
    times = []
    serial = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        serial = search(net, serial_config)
        times.append(time.perf_counter() - started)
    serial_s = min(times)
    assert not serial.feasible and not serial.exhausted

    config = SchedulerConfig(
        delay_mode="full",
        parallel=2,
        portfolio=("incremental:earliest", "stateclass:earliest"),
    )
    rows = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = search(net, config)
        seconds = time.perf_counter() - started
        assert result.feasible == serial.feasible
        assert not result.exhausted
        rows.append(
            {
                "workers": 2,
                "seconds": seconds,
                "speedup": serial_s / seconds,
                "winner_policy": result.winner_policy,
                "winner_engine": result.winner_engine,
                "winner_slot": (
                    f"{result.winner_engine}:{result.winner_policy}"
                ),
                "states_visited": result.stats.states_visited,
            }
        )
    return {
        "model": net.name,
        "mode": "portfolio",
        "flavour": "mixed-engine",
        "serial_seconds": serial_s,
        "serial_states_visited": serial.stats.states_visited,
        "feasible": serial.feasible,
        "curve": rows,
    }


def _hotpath_workloads():
    """The hot-path bench's workload sweep, imported from its module."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from bench_scheduler_hotpath import _workloads

    return list(_workloads())


def _baseline_rate():
    """``(states/sec, source)`` of the stored incremental baseline.

    Prefers a fresh local ``BENCH_scheduler.json`` (per-row sums, the
    hot-path bench's last run on this machine); falls back to the
    tracked pre-refactor snapshot ``BASELINE_scheduler.json`` on a
    clean checkout, so the gate also runs in CI.
    """
    path = os.path.abspath(SCHEDULER_BASELINE_PATH)
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            baseline = json.load(fh)
        rows = baseline.get("rows", [])
        if rows:
            states = sum(r["states_visited"] for r in rows)
            seconds = sum(r["incremental_seconds"] for r in rows)
            return states / seconds, _baseline_source(
                "BENCH_scheduler.json", baseline
            )
    frozen = os.path.abspath(FROZEN_BASELINE_PATH)
    if os.path.exists(frozen):
        with open(frozen, encoding="utf-8") as fh:
            baseline = json.load(fh)
        return baseline["states_per_sec"], _baseline_source(
            "benchmarks/BASELINE_scheduler.json", baseline
        )
    return None, None


def _baseline_source(path: str, baseline: dict) -> dict:
    """Provenance of a stored baseline + whether it is comparable.

    Absolute states/sec is only meaningful against a baseline recorded
    on the same interpreter line and architecture — a rate frozen
    under another Python minor or on different hardware says nothing
    about a refactor.  The gate hard-asserts only when ``comparable``;
    otherwise the ratio is still measured and recorded in the JSON so
    the trajectory stays visible.
    """
    stored = str(baseline.get("python") or "")
    current = platform.python_version()
    same_python = (
        stored.split(".")[:2] == current.split(".")[:2]
    )
    same_machine = baseline.get("machine") in (
        None,
        platform.machine(),
    )
    return {
        "path": path,
        "python": stored or None,
        "machine": baseline.get("machine"),
        "comparable": same_python and same_machine,
    }


def _hotpath_regression():
    """Re-measure the incremental adapter against the stored baseline.

    Returns ``None`` only when neither baseline file exists.  The
    measurement mirrors the hot-path bench's method — same workloads,
    min-of-N timing — so the two aggregates are comparable like for
    like.
    """
    stored_rate, source = _baseline_rate()
    if stored_rate is None:
        return None

    measured_states = 0
    measured_seconds = 0.0
    for _name, spec, _family in _hotpath_workloads():
        net = compose(spec).compiled()
        scheduler = PreRuntimeScheduler(
            net, SchedulerConfig(), engine="incremental"
        )
        result = scheduler.search()  # warm-up
        times = []
        for _ in range(3):
            started = time.perf_counter()
            scheduler.search()
            times.append(time.perf_counter() - started)
        measured_states += result.stats.states_visited
        measured_seconds += min(times)
    measured_rate = measured_states / measured_seconds
    return {
        "baseline_states_per_sec": stored_rate,
        "measured_states_per_sec": measured_rate,
        "ratio": measured_rate / stored_rate,
        "floor": MAX_HOTPATH_REGRESSION,
        "baseline_source": source,
    }


def test_parallel_dfs(report):
    portfolio = _portfolio_curve()
    worksteal = _worksteal_curve()
    mixed = _mixed_engine_curve()
    regression = _hotpath_regression()
    at4 = next(
        row for row in portfolio["curve"] if row["workers"] == 4
    )
    payload = {
        "bench": "parallel_dfs",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "rounds": ROUNDS,
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "target_met": at4["speedup"] >= MIN_SPEEDUP_AT_4,
        "results": [portfolio, worksteal, mixed],
        "hotpath_regression": regression,
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    report(
        "PD1",
        f"{portfolio['model']} serial",
        "baseline",
        f"{portfolio['serial_seconds']:.2f}s",
    )
    for row in portfolio["curve"]:
        report(
            "PD1",
            f"portfolio --parallel {row['workers']}",
            f">= {MIN_SPEEDUP_AT_4}x at 4",
            f"{row['speedup']:.2f}x (won by {row['winner_policy']})",
        )
    for row in worksteal["curve"]:
        report(
            "PD1",
            f"worksteal --parallel {row['workers']} work ratio",
            f"<= {MAX_WORKSTEAL_WORK_RATIO}",
            f"{row['work_ratio']:.2f}",
        )
    for row in mixed["curve"]:
        report(
            "PD1",
            f"mixed-engine race on {mixed['model']}",
            "stateclass slot wins",
            f"{row['winner_slot']} ({row['speedup']:.2f}x)",
        )
    if regression is not None:
        report(
            "PD1",
            "incremental adapter vs BENCH_scheduler.json",
            f">= {MAX_HOTPATH_REGRESSION:.2f}x baseline",
            f"{regression['ratio']:.2f}x "
            f"({regression['measured_states_per_sec']:,.0f} states/s)",
        )

    # -- gates --------------------------------------------------------
    assert at4["speedup"] >= MIN_SPEEDUP_AT_4, (
        f"portfolio at 4 workers managed only {at4['speedup']:.2f}x "
        f"over serial on {portfolio['model']}"
    )
    for row in worksteal["curve"]:
        assert row["work_ratio"] <= MAX_WORKSTEAL_WORK_RATIO, (
            "work stealing duplicated too much exploration: "
            f"{row['work_ratio']:.2f}x serial at "
            f"{row['workers']} workers"
        )
    # ISSUE 5: a stateclass slot must win the wide-interval race —
    # the engine-aware portfolio's reason to exist
    for row in mixed["curve"]:
        assert row["winner_engine"] == "stateclass", (
            f"the dense slot lost the wide-interval race to "
            f"{row['winner_slot']}"
        )
    # ISSUE 5: the EngineAdapter refactor may not tax the hot loop.
    # Hard-assert only against a comparable baseline (same Python
    # line, same architecture) — an alien host's absolute rate proves
    # nothing either way; the ratio is recorded in the JSON regardless
    if regression is not None and regression["baseline_source"].get(
        "comparable"
    ):
        assert regression["ratio"] >= MAX_HOTPATH_REGRESSION, (
            "incremental adapter regressed vs the pre-refactor "
            f"BENCH_scheduler.json baseline: {regression['ratio']:.2f}x "
            f"({regression['measured_states_per_sec']:,.0f} vs "
            f"{regression['baseline_states_per_sec']:,.0f} states/s)"
        )


def test_json_artifact_shape(report):
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_parallel_dfs(report)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "parallel_dfs"
    modes = {entry["mode"] for entry in payload["results"]}
    assert modes == {"portfolio", "worksteal"}
    for entry in payload["results"]:
        assert entry["curve"], "empty speedup curve"
        for row in entry["curve"]:
            assert row["seconds"] > 0
