"""Experiment PD1 — parallel DFS: portfolio racing and work stealing.

Acceptance benchmark of :mod:`repro.scheduler.parallel`.  Two
workload/strategy pairings are measured end-to-end (compose + compile
+ search + reference-replay validation, i.e. exactly what
``ezrt schedule --parallel N`` pays):

1. **Portfolio racing on the hard feasible model**
   (:func:`repro.workloads.hard_portfolio_task_set`): the serial
   default ordering needs ~300k states; alternative orderings reach a
   schedule in a few thousand.  Racing them wins even on a single
   core, because the winner's work is a fraction of the serial work —
   the speedup-vs-workers curve is recorded and the acceptance gate
   (:data:`MIN_SPEEDUP_AT_4`× at 4 workers) is asserted alongside
   verdict parity with the serial search.
2. **Work stealing on an exhaustively-infeasible model**: the subtree
   partition with a shared visited filter must reproduce the serial
   infeasible verdict with bounded duplicated work
   (:data:`MAX_WORKSTEAL_WORK_RATIO`× the serial visited count).  On a
   multi-core host this curve shows wall-clock scaling too; on the
   single-core CI box only the parity and bounded-work properties are
   gated.

Results land in ``BENCH_parallel.json`` at the repository root; CI
uploads it as an artifact, so the speedup trajectory is tracked PR
over PR.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.blocks import compose
from repro.scheduler import SchedulerConfig, find_schedule
from repro.workloads import hard_portfolio_task_set, random_task_set

#: Acceptance gate (ISSUE 3): `ezrt schedule --parallel 4` must beat
#: the serial search end-to-end by at least this factor on the hard
#: model.  Measured ~6-12x on a single shared vCPU; 1.8 is the
#: noise-proof floor.
MIN_SPEEDUP_AT_4 = 1.8

#: Work-stealing may duplicate some exploration (lock-free filter
#: claims, frontier overlap) but must stay within this factor of the
#: serial visited count on an exhaustive (infeasible) search.
MAX_WORKSTEAL_WORK_RATIO = 1.25

WORKER_CURVE = (2, 4)
ROUNDS = 2

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)


def _end_to_end(spec, config):
    """Median-free min-of-N full synthesis latency."""
    times = []
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        model = compose(spec)
        result = find_schedule(model, config)
        times.append(time.perf_counter() - started)
    return result, min(times)


def _portfolio_curve():
    spec = hard_portfolio_task_set()
    serial, serial_s = _end_to_end(spec, SchedulerConfig())
    rows = []
    for workers in WORKER_CURVE:
        result, seconds = _end_to_end(
            spec, SchedulerConfig(parallel=workers)
        )
        assert result.feasible == serial.feasible, (
            f"portfolio verdict diverged at {workers} workers"
        )
        rows.append(
            {
                "workers": workers,
                "seconds": seconds,
                "speedup": serial_s / seconds,
                "winner_policy": result.winner_policy,
                "states_visited": result.stats.states_visited,
                "restarts": result.stats.restarts,
            }
        )
    return {
        "model": spec.name,
        "mode": "portfolio",
        "serial_seconds": serial_s,
        "serial_states_visited": serial.stats.states_visited,
        "feasible": serial.feasible,
        "curve": rows,
    }


def _worksteal_curve():
    # exhaustively infeasible: ~7k states to refute, fully decidable
    spec = random_task_set(6, 0.95, seed=3, deadline_slack=0.6)
    serial, serial_s = _end_to_end(spec, SchedulerConfig())
    assert not serial.feasible and not serial.exhausted
    rows = []
    for workers in WORKER_CURVE:
        config = SchedulerConfig(
            parallel=workers, parallel_mode="worksteal"
        )
        result, seconds = _end_to_end(spec, config)
        assert result.feasible == serial.feasible, (
            f"worksteal verdict diverged at {workers} workers"
        )
        assert not result.exhausted
        rows.append(
            {
                "workers": workers,
                "seconds": seconds,
                "speedup": serial_s / seconds,
                "states_visited": result.stats.states_visited,
                "work_ratio": (
                    result.stats.states_visited
                    / serial.stats.states_visited
                ),
            }
        )
    return {
        "model": spec.name,
        "mode": "worksteal",
        "serial_seconds": serial_s,
        "serial_states_visited": serial.stats.states_visited,
        "feasible": serial.feasible,
        "curve": rows,
    }


def test_parallel_dfs(report):
    portfolio = _portfolio_curve()
    worksteal = _worksteal_curve()
    at4 = next(
        row for row in portfolio["curve"] if row["workers"] == 4
    )
    payload = {
        "bench": "parallel_dfs",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "rounds": ROUNDS,
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "target_met": at4["speedup"] >= MIN_SPEEDUP_AT_4,
        "results": [portfolio, worksteal],
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    report(
        "PD1",
        f"{portfolio['model']} serial",
        "baseline",
        f"{portfolio['serial_seconds']:.2f}s",
    )
    for row in portfolio["curve"]:
        report(
            "PD1",
            f"portfolio --parallel {row['workers']}",
            f">= {MIN_SPEEDUP_AT_4}x at 4",
            f"{row['speedup']:.2f}x (won by {row['winner_policy']})",
        )
    for row in worksteal["curve"]:
        report(
            "PD1",
            f"worksteal --parallel {row['workers']} work ratio",
            f"<= {MAX_WORKSTEAL_WORK_RATIO}",
            f"{row['work_ratio']:.2f}",
        )

    # -- gates --------------------------------------------------------
    assert at4["speedup"] >= MIN_SPEEDUP_AT_4, (
        f"portfolio at 4 workers managed only {at4['speedup']:.2f}x "
        f"over serial on {portfolio['model']}"
    )
    for row in worksteal["curve"]:
        assert row["work_ratio"] <= MAX_WORKSTEAL_WORK_RATIO, (
            "work stealing duplicated too much exploration: "
            f"{row['work_ratio']:.2f}x serial at "
            f"{row['workers']} workers"
        )


def test_json_artifact_shape(report):
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_parallel_dfs(report)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "parallel_dfs"
    modes = {entry["mode"] for entry in payload["results"]}
    assert modes == {"portfolio", "worksteal"}
    for entry in payload["results"]:
        assert entry["curve"], "empty speedup curve"
        for row in entry["curve"]:
            assert row["seconds"] > 0
