"""Experiment E2 — the building blocks of Figs. 1 and 2.

Verifies the structural content of every block type (node kinds,
intervals, the figure's characteristic arc weights) and measures the
cost of block construction and whole-model composition.
"""

import pytest

from repro.blocks import (
    BlockStyle,
    add_fork_block,
    add_join_block,
    add_processor_block,
    add_task_blocks,
)
from repro.spec import SchedulingType, Task
from repro.tpn import TimeInterval, TimePetriNet


def _fresh_task(preemptive: bool = False) -> Task:
    return Task(
        name="X",
        computation=4,
        deadline=12,
        period=20,
        release=1,
        phase=2,
        scheduling=(
            SchedulingType.PREEMPTIVE
            if preemptive
            else SchedulingType.NON_PREEMPTIVE
        ),
    )


def test_blocks_match_figures(report):
    net = TimePetriNet("figs")
    proc = add_processor_block(net, "proc0")
    nodes = add_task_blocks(net, _fresh_task(), 3, proc)
    # Fig 1(c): arrival with a_i = N-1 budget weight
    report("E2", "arrival budget weight a_i", "N-1",
           net.output_weight("tph_X", "pwa_X"))
    assert net.output_weight("tph_X", "pwa_X") == 2
    # Fig 1(d): deadline checking [d, d]
    assert net.transition(nodes.deadline_t).interval == (
        TimeInterval.point(12)
    )
    # Fig 2(a): release window [r, d-c], computation [c, c]
    assert net.transition(nodes.release_t).interval == TimeInterval(
        1, 8
    )
    assert net.transition(nodes.compute_t).interval == (
        TimeInterval.point(4)
    )
    report("E2", "NP compute interval", "[c, c]",
           str(net.transition(nodes.compute_t).interval))

    net2 = TimePetriNet("figs-p")
    proc2 = add_processor_block(net2, "proc0")
    nodes2 = add_task_blocks(net2, _fresh_task(preemptive=True), 3, proc2)
    # Fig 2(b): unit subtasks and the weight-c arcs
    assert net2.transition(nodes2.compute_t).interval == (
        TimeInterval.point(1)
    )
    assert net2.output_weight("tr_X", "pwg_X") == 4
    assert net2.input_weight("pwf_X", "tf_X") == 4
    report("E2", "P unit-subtask interval", "[1, 1]",
           str(net2.transition(nodes2.compute_t).interval))
    report("E2", "P weight-c arcs", "c", 4)


def bench_single_task_block(benchmark):
    """Cost of instantiating one task's blocks (Figs. 1(c,d) + 2)."""

    def build():
        net = TimePetriNet("one")
        proc = add_processor_block(net, "proc0")
        return add_task_blocks(net, _fresh_task(), 10, proc)

    nodes = benchmark(build)
    assert nodes.finisher == "tc_X"


def bench_fork_join_composition(benchmark):
    """Fork + join over 50 tasks (Figs. 1(a,b))."""

    def build():
        net = TimePetriNet("many")
        proc = add_processor_block(net, "proc0")
        pools = {}
        for i in range(50):
            task = Task(
                name=f"T{i}", computation=1, deadline=10, period=10
            )
            nodes = add_task_blocks(net, task, 2, proc)
            pools[nodes.finished_pool] = 2
        add_fork_block(net, [f"pst_T{i}" for i in range(50)])
        add_join_block(net, pools)
        return net

    net = benchmark(build)
    # per task: t_ph, t_a, t_d, t_r, t_g, t_c — plus fork and join
    assert net.stats()["transitions"] == 50 * 6 + 2


@pytest.mark.parametrize("style", [BlockStyle.COMPACT, BlockStyle.EXPANDED])
def bench_block_style_cost(benchmark, style):
    """Compact vs expanded per-task construction cost."""

    def build():
        net = TimePetriNet(f"style-{style.value}")
        proc = add_processor_block(net, "proc0")
        return add_task_blocks(net, _fresh_task(), 5, proc, style=style)

    benchmark(build)
