"""Ablation A3 — priority policies and candidate-ordering modes.

The extended TPN carries a priority function π used to order (or, in
the paper's strict reading, filter) the fireable set.  This bench
sweeps the priority policies (deadline-monotonic, rate-monotonic,
specification order, none) and the two priority modes on the mine
pump, measuring how much guidance the priorities give the search.
"""

import pytest

from repro.blocks import ComposerOptions, compose
from repro.scheduler import SchedulerConfig, find_schedule
from repro.spec import mine_pump

POLICIES = ("dm", "rm", "lex", "none")


@pytest.fixture(scope="module", params=POLICIES)
def policy_model(request):
    return request.param, compose(
        mine_pump(), ComposerOptions(priority_policy=request.param)
    )


def bench_policy_search(benchmark, policy_model, report):
    policy, model = policy_model
    result = benchmark(find_schedule, model)
    assert result.feasible, policy
    report(
        "A3",
        f"policy={policy}: states / backtracks",
        "dm ≈ 3268 (paper)",
        f"{result.stats.states_visited} / {result.stats.backtracks}",
    )


def test_dm_is_best_guidance(report):
    """Deadline-monotonic ordering should visit no more states than
    the unguided search."""
    results = {}
    for policy in POLICIES:
        model = compose(
            mine_pump(), ComposerOptions(priority_policy=policy)
        )
        results[policy] = find_schedule(model)
        assert results[policy].feasible
    assert (
        results["dm"].stats.states_visited
        <= results["none"].stats.states_visited
    )
    report(
        "A3",
        "dm vs unguided states",
        "dm <= none",
        f"{results['dm'].stats.states_visited} <= "
        f"{results['none'].stats.states_visited}",
    )


def bench_strict_priority_mode(benchmark, report):
    """The paper's literal FT(s) filter on the mine pump."""
    model = compose(mine_pump())
    result = benchmark(
        find_schedule, model, SchedulerConfig(priority_mode="strict")
    )
    # strict filtering prunes harder; it must still find the schedule
    # on this workload (ties within the d=500 group keep alternatives)
    assert result.feasible
    report("A3", "strict FT(s) filter states", "n/a",
           result.stats.states_visited)


def bench_delay_mode_extremes(benchmark, report):
    model = compose(mine_pump())
    result = benchmark(
        find_schedule, model, SchedulerConfig(delay_mode="extremes")
    )
    assert result.feasible
    report("A3", "delay=extremes states", "n/a",
           result.stats.states_visited)
