"""Experiment SC1 — scaling of the pre-runtime search.

The paper reports one data point (782 instances / 3268 states /
330 ms).  This bench sweeps task-set size and hyper-period to show the
scaling shape: states visited grow linearly with the number of task
instances while the search stays backtrack-light, and wall-clock grows
with states × net size.
"""

import pytest

from repro.blocks import compose
from repro.scheduler import find_schedule
from repro.spec import total_instances
from repro.workloads import random_task_set

SIZES = (2, 4, 8, 12)


@pytest.fixture(scope="module", params=SIZES)
def sized_model(request):
    n = request.param
    spec = random_task_set(
        n, total_utilization=0.4, seed=100 + n,
        period_grid=(20, 40, 80),
    )
    return n, spec, compose(spec)


def bench_search_by_task_count(benchmark, sized_model, report):
    n, spec, model = sized_model
    result = benchmark(find_schedule, model)
    assert result.feasible
    per_instance = (
        result.stats.states_visited / model.total_instances
    )
    report(
        "SC1",
        f"n={n}: instances / states / per-instance",
        "linear",
        f"{model.total_instances} / "
        f"{result.stats.states_visited} / {per_instance:.1f}",
    )


def test_states_scale_with_instances(report):
    """Across the sweep, visited states per instance stay bounded
    (the search is guided, not exploding)."""
    ratios = []
    for n in SIZES:
        spec = random_task_set(
            n, total_utilization=0.4, seed=100 + n,
            period_grid=(20, 40, 80),
        )
        model = compose(spec)
        result = find_schedule(model)
        assert result.feasible
        ratios.append(
            result.stats.states_visited / model.total_instances
        )
    assert max(ratios) < 12.0  # compact blocks: ~4-6 firings/instance
    report("SC1", "states per instance across sweep", "bounded",
           f"{min(ratios):.1f} .. {max(ratios):.1f}")


@pytest.mark.parametrize("periods", [(10, 20), (10, 25), (20, 50)])
def bench_hyperperiod_growth(benchmark, periods):
    """Same tasks, different period grids: the LCM drives the cost."""
    spec = random_task_set(
        5, total_utilization=0.4, seed=77, period_grid=periods
    )
    model = compose(spec)
    result = benchmark(find_schedule, model)
    assert result.feasible
    assert total_instances(spec) == model.total_instances
