"""Experiment SC1 — dense-time state-class engine vs discrete search.

Acceptance benchmark of ``PreRuntimeScheduler(engine="stateclass")``.
Two properties are measured and gated:

1. **States-explored reduction on the wide-interval family**
   (:func:`repro.workloads.wide_interval_family`): jobs released
   within wide windows ``[o, o + width]`` competing for one processor,
   with an unreachable final marking so both engines must sweep their
   entire space (an exhaustive refutation — the state counts are then
   directly comparable).  The complete discrete search
   (``engine="incremental"``, ``delay_mode="full"``) visits one state
   per integer clock valuation, growing with ``width``; the class
   graph covers a whole window with one DBM and stays
   width-independent.  The gate asserts a
   :data:`MIN_STATES_REDUCTION`× reduction on every family member.

2. **Verdict equivalence on the paper models**: the dense engine must
   return the serial discrete verdict on every paper case study, and
   every feasible dense schedule is concretised to integer firing
   times and replayed through the checked reference engine (the
   replay runs inside the engine — a divergence raises instead of
   returning).

Results land in ``BENCH_stateclass.json`` at the repository root; CI
uploads it as an artifact, so the reduction trajectory is tracked PR
over PR.
"""

from __future__ import annotations

import json
import os
import platform

from repro.blocks import compose
from repro.scheduler import SchedulerConfig, find_schedule
from repro.scheduler.dfs import search
from repro.spec import (
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
)
from repro.workloads import wide_interval_family, wide_interval_job_net

#: Acceptance gate (ISSUE 4): on every wide-interval family member the
#: state-class engine must explore at least this factor fewer states
#: than the complete discrete search.  Measured 2.7-5.2x at widths
#: 4-8; 2.0 is the floor the issue demands.
MIN_STATES_REDUCTION = 2.0

WIDTHS = (4, 6, 8)

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_stateclass.json"
)


def _wide_interval_rows():
    """Exhaustive refutations: full state-space sizes, both engines."""
    rows = []
    for label, net in wide_interval_family(widths=WIDTHS):
        compiled = net.compile()
        dense = search(compiled, SchedulerConfig(engine="stateclass"))
        discrete = search(
            compiled, SchedulerConfig(delay_mode="full")
        )
        assert not dense.feasible and not dense.exhausted, (
            f"{label}: dense refutation did not complete"
        )
        assert not discrete.feasible and not discrete.exhausted, (
            f"{label}: discrete refutation did not complete"
        )
        rows.append(
            {
                "model": label,
                "dense_states": dense.stats.states_visited,
                "discrete_states": discrete.stats.states_visited,
                "reduction": (
                    discrete.stats.states_visited
                    / dense.stats.states_visited
                ),
            }
        )
    return rows


def _paper_model_rows():
    """Verdict parity + reference replay on the paper case studies."""
    rows = []
    for spec in (
        fig3_precedence(),
        fig4_exclusion(),
        fig8_preemptive(),
        mine_pump(),
    ):
        model = compose(spec)
        dense = find_schedule(
            model, SchedulerConfig(engine="stateclass")
        )
        discrete = find_schedule(model, SchedulerConfig())
        assert dense.feasible == discrete.feasible, (
            f"{spec.name}: dense verdict diverged from discrete"
        )
        rows.append(
            {
                "model": spec.name,
                "feasible": dense.feasible,
                "dense_states": dense.stats.states_visited,
                "discrete_states": discrete.stats.states_visited,
                "makespan": dense.makespan,
                "windows": len(dense.interval_schedule or []),
            }
        )
    return rows


def test_stateclass_engine(report):
    wide = _wide_interval_rows()
    paper = _paper_model_rows()

    # a feasible family member exercises concretisation end to end
    feasible_net = wide_interval_job_net(feasible=True).compile()
    feasible = search(
        feasible_net, SchedulerConfig(engine="stateclass")
    )
    assert feasible.feasible and feasible.interval_schedule

    worst = min(row["reduction"] for row in wide)
    payload = {
        "bench": "stateclass",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "min_states_reduction": MIN_STATES_REDUCTION,
        "worst_reduction": worst,
        "target_met": worst >= MIN_STATES_REDUCTION,
        "wide_interval": wide,
        "paper_models": paper,
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for row in wide:
        report(
            "SC1",
            f"{row['model']} states dense/discrete",
            f">= {MIN_STATES_REDUCTION}x fewer",
            f"{row['dense_states']}/{row['discrete_states']} "
            f"({row['reduction']:.1f}x)",
        )
    for row in paper:
        report(
            "SC1",
            f"{row['model']} verdict parity",
            "feasible" if row["feasible"] else "infeasible",
            f"ok ({row['dense_states']} classes)",
        )

    # -- gates --------------------------------------------------------
    for row in wide:
        assert row["reduction"] >= MIN_STATES_REDUCTION, (
            f"{row['model']}: dense search explored only "
            f"{row['reduction']:.2f}x fewer states than the complete "
            "discrete search"
        )


def test_json_artifact_shape(report):
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_stateclass_engine(report)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "stateclass"
    assert payload["wide_interval"], "empty wide-interval sweep"
    for row in payload["wide_interval"]:
        assert row["dense_states"] > 0
        assert row["discrete_states"] > 0
    assert payload["paper_models"], "empty paper-model sweep"
