"""Experiment BT1 — batch engine throughput: serial vs pooled + cache.

Acceptance benchmark of the ``repro.batch`` subsystem on a ≥16-spec
campaign:

* the pooled :class:`~repro.batch.BatchEngine` beats serial synthesis
  wall-clock.  On a many-core box the speedup comes from genuine
  parallelism; on a constrained box it still materialises because a
  realistic campaign contains hard points capped by the per-job
  wall-clock budget, and pooled workers overlap those waits while
  serial execution pays them back to back;
* a second identical campaign run is served from the result cache
  (≥ 90% hits) and produces byte-identical JSONL result rows.

The grid mixes a low-utilisation band (fast, feasible) with a
high-utilisation band whose points are overwhelmingly timeout-bound —
the shape any feasibility-frontier sweep has.
"""

import time

from repro.batch import BatchEngine, CampaignGrid, ResultCache, run_campaign

#: n ∈ {4, 6} × U ∈ {0.4, 0.75} × 4 seeds = 16 jobs.  At U=0.75 nearly
#: every seed exhausts a 1 s budget (measured: >1 s unbounded), so the
#: per-job timeout dominates the serial wall-clock.
GRID = CampaignGrid(
    n_tasks=(4, 6),
    utilizations=(0.4, 0.75),
    seeds=(1, 2, 3, 4),
)
JOB_TIMEOUT = 0.5
POOL_WORKERS = 8


def _run(max_workers: int, cache: ResultCache | None):
    engine = BatchEngine(
        max_workers=max_workers,
        job_timeout=JOB_TIMEOUT,
        cache=cache,
    )
    started = time.monotonic()
    campaign = run_campaign(GRID, engine)
    return campaign, time.monotonic() - started


def test_pooled_beats_serial(report):
    assert GRID.size >= 16
    serial_campaign, serial_wall = _run(max_workers=1, cache=None)
    pooled_campaign, pooled_wall = _run(
        max_workers=POOL_WORKERS, cache=None
    )
    # verdicts are monotone in the effective budget: under CPU
    # contention a pooled worker may run out of wall-clock where the
    # serial run concluded (feasible/infeasible → timeout), but it can
    # never *find* a schedule the serial search missed — so pooled
    # feasible points must be a subset of serial ones, and the two
    # runs must agree on the bulk of the grid
    serial_feasible = {
        i
        for i, o in enumerate(serial_campaign.outcomes)
        if o.feasible
    }
    pooled_feasible = {
        i
        for i, o in enumerate(pooled_campaign.outcomes)
        if o.feasible
    }
    assert pooled_feasible <= serial_feasible
    agreeing = sum(
        s.status == p.status
        for s, p in zip(
            serial_campaign.outcomes, pooled_campaign.outcomes
        )
    )
    assert agreeing >= GRID.size - 4
    # the campaign must contain real budget-bound work, or the
    # comparison degenerates into measuring pool overhead
    hard = (
        pooled_campaign.stats.timeout
        + pooled_campaign.stats.infeasible
    )
    assert hard >= 4
    report(
        "BT1",
        f"{GRID.size}-spec campaign serial vs pooled({POOL_WORKERS})",
        "pooled wins",
        f"{serial_wall:.2f}s vs {pooled_wall:.2f}s "
        f"({serial_wall / pooled_wall:.1f}x)",
    )
    assert pooled_wall < serial_wall


def test_second_run_hits_cache_with_identical_rows(report, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    engine = BatchEngine(
        max_workers=POOL_WORKERS,
        job_timeout=JOB_TIMEOUT,
        cache=cache,
    )
    first = run_campaign(
        GRID, engine, jsonl_path=str(tmp_path / "run1.jsonl")
    )
    assert first.stats.cache_hits == 0
    assert first.stats.cache_misses == GRID.size

    second = run_campaign(
        GRID, engine, jsonl_path=str(tmp_path / "run2.jsonl")
    )
    hit_rate = second.stats.hit_rate
    assert hit_rate >= 0.9
    first_bytes = (tmp_path / "run1.jsonl").read_bytes()
    second_bytes = (tmp_path / "run2.jsonl").read_bytes()
    assert first_bytes == second_bytes
    report(
        "BT1",
        "re-run cache hit rate / identical JSONL",
        ">=90% / yes",
        f"{100.0 * hit_rate:.0f}% / "
        f"{'yes' if first_bytes == second_bytes else 'NO'}",
    )

    # a cold engine sharing the persisted directory also hits
    fresh = BatchEngine(
        max_workers=1,
        job_timeout=JOB_TIMEOUT,
        cache=ResultCache(str(tmp_path / "cache")),
    )
    third = run_campaign(GRID, fresh)
    assert third.stats.hit_rate == 1.0
