"""Experiment E8 — the schedule table of Fig. 8.

The paper's example table has 11 entries: two instances of TaskA/B/C,
one of TaskD, TaskB preempted twice, resume entries flagged ``true``,
rendered as a ``struct ScheduleItem`` initialiser with per-row
comments.  The reverse-engineered task set reproduces that shape (12
entries here — our B2 is additionally preempted by C2); the bench
checks the shape, renders the figure's exact format, executes the
table on the dispatcher machine and (when a host compiler exists)
compiles and runs the generated C project.
"""

import shutil

import pytest

from repro.blocks import compose
from repro.codegen import generate_project, render_paper_style
from repro.scheduler import find_schedule, schedule_from_result
from repro.sim import run_schedule, verify_trace
from repro.spec import fig8_preemptive

PAPER_ENTRIES = 11
PAPER_RESUMES = 5


@pytest.fixture(scope="module")
def bundle():
    model = compose(fig8_preemptive())
    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    return model, result, schedule


def test_fig8_table_shape(bundle, report):
    _model, _result, schedule = bundle
    items = schedule.items
    resumes = sum(1 for item in items if item.preempted)
    instances = {}
    for item in items:
        instances.setdefault(item.task, set()).add(item.instance)
    assert instances == {
        "TaskA": {1, 2},
        "TaskB": {1, 2},
        "TaskC": {1, 2},
        "TaskD": {1},
    }
    comments = [item.comment for item in items]
    assert "TaskB1 preempts TaskA1" in comments
    assert "TaskC1 preempts TaskB1" in comments
    assert "TaskD1 preempts TaskB1" in comments
    report("E8", "table entries", PAPER_ENTRIES, len(items))
    report("E8", "resume entries (flag true)", PAPER_RESUMES, resumes)
    report("E8", "instances A/B/C/D", "2/2/2/1", "2/2/2/1")


def test_fig8_c_format(bundle, report):
    _model, _result, schedule = bundle
    text = render_paper_style(schedule.items)
    assert text.splitlines()[0] == (
        "struct ScheduleItem scheduleTable [SCHEDULE_SIZE] ="
    )
    assert "{  1, false, 1, (int *)TaskA}, /* A1 starts */" in text
    report("E8", "C initialiser format", "Fig. 8", "matched")


def bench_fig8_synthesis(benchmark):
    model = compose(fig8_preemptive())
    result = benchmark(find_schedule, model)
    assert result.feasible


def bench_fig8_table_build(benchmark, bundle):
    model, result, _schedule = bundle
    schedule = benchmark(schedule_from_result, model, result)
    assert len(schedule.items) >= PAPER_ENTRIES


def bench_fig8_machine_execution(benchmark, bundle, report):
    model, _result, schedule = bundle

    def run():
        machine_result = run_schedule(model, schedule)
        return machine_result, verify_trace(model, machine_result)

    machine_result, violations = benchmark(run)
    assert machine_result.ok and violations == []
    report("E8", "dispatcher-machine misses", 0, len(violations))


@pytest.mark.skipif(
    shutil.which("cc") is None, reason="no host C compiler"
)
def bench_fig8_generated_c(benchmark, bundle, tmp_path_factory):
    model, _result, schedule = bundle
    project = generate_project(model, schedule, "hostsim")
    directory = str(tmp_path_factory.mktemp("fig8c"))

    def build_and_run():
        return project.compile_and_run(directory)

    output = benchmark(build_and_run)
    assert "12 dispatches, 5 resumes" in output
