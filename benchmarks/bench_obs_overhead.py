"""Experiment OBS1 — observability overhead: the hot path stays hot.

Acceptance benchmark of the :mod:`repro.obs` layer (ISSUE 6).  The
instrumentation contract is that a search which nobody watches pays
(nearly) nothing: with tracing and progress off — the default — the
only live instrumentation is the always-on metrics registry, which
costs a handful of dict writes per *search*, not per state.  This
bench enforces that contract and records what full tracing costs, so
the trajectory is tracked PR over PR:

1. **Exactness** (hard gate): the deterministic ``SearchStats``
   counters and the firing schedule are identical across the bare,
   default and fully-traced runs on every workload.  Instrumentation
   that changes the search is a bug.
2. **Disabled-path overhead** (hard gate): aggregate wall-clock of the
   default path (metrics registry on, no recorder, no heartbeat) over
   the workload sweep within :data:`MAX_DISABLED_OVERHEAD` of the bare
   path (registry nulled out, exactly the pre-obs hot loop).
3. **Traced-path overhead** (recorded, not gated): the same aggregate
   with span recording to a JSONL sink — the price of ``--trace``.

Timing methodology: the three variants run strictly interleaved and
each takes the *median* of several rounds, so host noise hits all
variants alike and the median is robust against both scheduler
preemptions (which inflate a round) and lucky cache alignments (which
deflate one — taking the min instead let a single lucky ``default``
round report a negative "overhead").  The aggregate overhead is
additionally clamped at 0: the default path cannot actually be faster
than the bare loop, so any residual negative reading is timer noise
and would only mask a later regression by padding the gate.

Results are written to ``BENCH_obs.json`` at the repository root; CI
runs this bench as a gate and uploads the JSON as an artifact.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
import time

from repro.blocks import compose
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.spec import paper_examples
from repro.workloads import random_task_set

#: Hard ceiling for the disabled-path slowdown (aggregate over the
#: sweep): default-config search may be at most 2% slower than the
#: bare hot loop.  ISSUE 6 acceptance criterion.
MAX_DISABLED_OVERHEAD = 0.02

ROUNDS = 7
JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_obs.json"
)


def _workloads():
    """Timed workloads: long enough that a 2% gate beats host noise.

    A sub-10ms search cannot support a 2% wall-clock gate (one timer
    tick or cache hiccup is worth more), so timing runs only on
    workloads in the 50ms+ range: the mine-pump case study and a
    ``max_states``-bounded sweep of a large seeded net (the budget
    makes the visited count — and thus the measured work — exactly
    reproducible even though the model itself is infeasible to
    exhaust).
    """
    yield "paper:mine-pump", paper_examples()["mine-pump"], {}
    yield (
        "bounded:n32",
        random_task_set(
            32,
            total_utilization=0.4,
            seed=132,
            period_grid=(20, 40, 80),
        ),
        {"max_states": 8000},
    )


def _exactness_workloads():
    """Small paper models: checked for parity, not timed."""
    for name, spec in paper_examples().items():
        yield f"paper:{name}", spec, {}


def _timed_search(net, variant, trace_path, limits):
    """One search under a given instrumentation variant."""
    if variant == "traced":
        config = SchedulerConfig(trace_jsonl=trace_path, **limits)
    else:
        config = SchedulerConfig(**limits)
    scheduler = PreRuntimeScheduler(net, config)
    if variant == "bare":
        # exactly the pre-obs hot loop: no registry, no recorder,
        # no heartbeat reach the search core
        scheduler.metrics = None
    started = time.perf_counter()
    result = scheduler.search()
    return result, time.perf_counter() - started


def _deterministic_stats(result):
    return {
        name: value
        for name, value in result.stats.as_dict().items()
        if name not in ("elapsed_seconds", "states_per_second")
    }


VARIANTS = ("bare", "default", "traced")


def _check_exactness(name, results):
    bare = results["bare"]
    for variant in ("default", "traced"):
        other = results[variant]
        assert (
            other.firing_schedule == bare.firing_schedule
        ), f"{name}: {variant} run changed the schedule"
        assert _deterministic_stats(other) == (
            _deterministic_stats(bare)
        ), f"{name}: {variant} run changed the search stats"
    # the default path must still ship the metrics snapshot home
    # (sections may be empty: the depth gauge is sampled only when a
    # deadline/tick/heartbeat pays for polling)
    assert set(results["default"].metrics) == {
        "counters",
        "gauges",
        "histograms",
    }, f"{name}: default run shipped no metrics snapshot"


def _measure(net, trace_path, limits):
    """Interleaved median-of-N timing for the three variants."""
    results = {}
    for variant in VARIANTS:  # warm-up + exactness outputs
        results[variant], _ = _timed_search(
            net, variant, trace_path, limits
        )
    samples = {variant: [] for variant in VARIANTS}
    for _ in range(ROUNDS):
        for variant in VARIANTS:
            _, seconds = _timed_search(
                net, variant, trace_path, limits
            )
            samples[variant].append(seconds)
    return results, {
        variant: statistics.median(rounds)
        for variant, rounds in samples.items()
    }


def test_obs_overhead(report):
    fd, trace_path = tempfile.mkstemp(
        prefix="bench-obs-", suffix=".jsonl"
    )
    os.close(fd)
    rows = []
    try:
        # parity of the small paper models (single run each, untimed)
        for name, spec, limits in _exactness_workloads():
            net = compose(spec).compiled()
            results = {
                variant: _timed_search(
                    net, variant, trace_path, limits
                )[0]
                for variant in VARIANTS
            }
            _check_exactness(name, results)

        for name, spec, limits in _workloads():
            net = compose(spec).compiled()
            results, medians = _measure(net, trace_path, limits)
            _check_exactness(name, results)
            rows.append(
                {
                    "workload": name,
                    "states_visited": results[
                        "bare"
                    ].stats.states_visited,
                    "bare_seconds": medians["bare"],
                    "default_seconds": medians["default"],
                    "traced_seconds": medians["traced"],
                    "disabled_overhead": medians["default"]
                    / medians["bare"]
                    - 1.0,
                    "traced_overhead": medians["traced"]
                    / medians["bare"]
                    - 1.0,
                }
            )
    finally:
        os.unlink(trace_path)

    total = {
        variant: sum(r[f"{variant}_seconds"] for r in rows)
        for variant in VARIANTS
    }
    # clamp at 0: the default path cannot truly beat the bare loop,
    # so a negative reading is timer noise, not a credit the gate
    # should bank against future regressions
    disabled_overhead = max(
        0.0, total["default"] / total["bare"] - 1.0
    )
    traced_overhead = total["traced"] / total["bare"] - 1.0
    payload = {
        "bench": "obs_overhead",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": ROUNDS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "disabled_overhead": disabled_overhead,
        "traced_overhead": traced_overhead,
        "rows": rows,
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for row in rows:
        report(
            "OBS1",
            f"{row['workload']} disabled overhead",
            f"< {MAX_DISABLED_OVERHEAD:.0%}",
            f"{row['disabled_overhead']:+.2%} "
            f"(traced {row['traced_overhead']:+.2%})",
        )
    report(
        "OBS1",
        "aggregate disabled overhead",
        f"< {MAX_DISABLED_OVERHEAD:.0%}",
        f"{disabled_overhead:+.2%}",
    )

    # -- the gate ----------------------------------------------------
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        "observability made the default search path "
        f"{disabled_overhead:+.2%} slower than the bare hot loop "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_json_artifact_shape():
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_obs_overhead(lambda *a: None)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "obs_overhead"
    assert payload["rows"], "no benchmark rows recorded"
    for row in payload["rows"]:
        assert row["bare_seconds"] > 0
        assert row["states_visited"] > 0
    assert payload["disabled_overhead"] < payload[
        "max_disabled_overhead"
    ]
