"""Experiment E1 — Table 1 and the Section-5 numbers (mine pump).

Paper: "This problem has 10 tasks, implying 782 tasks' instances and,
at the beginning, all 10 tasks arrive at the same time.  Our solution
searched 3268 states (where minimum number of states is 3130) in
330 ms" (AMD Athlon 1800, 768 MB RAM, Linux, GCC 4.0.2).

Reproduced here: instance count and minimum state count exactly; the
visited-state count within a few percent (tie-breaking details differ);
the search wall-clock on current hardware.
"""

import pytest

from repro.blocks import compose
from repro.scheduler import (
    find_schedule,
    schedule_from_result,
    validate_schedule,
)
from repro.spec import mine_pump, schedule_period, total_instances

PAPER_INSTANCES = 782
PAPER_MIN_STATES = 3130
PAPER_VISITED = 3268
PAPER_MS_ATHLON_1800 = 330


@pytest.fixture(scope="module")
def model():
    return compose(mine_pump())


def test_spec_reproduces_table1(report):
    spec = mine_pump()
    assert total_instances(spec) == PAPER_INSTANCES
    assert schedule_period(spec) == 30000
    report("E1", "task instances", PAPER_INSTANCES,
           total_instances(spec))


def bench_mine_pump_compose(benchmark, report):
    """Spec → TPN translation cost for the full case study."""
    model = benchmark(compose, mine_pump())
    stats = model.net.stats()
    report("E1", "TPN size (P/T/F)", "n/a",
           f"{stats['places']}/{stats['transitions']}/{stats['arcs']}")
    assert model.minimum_firings() == PAPER_MIN_STATES


def bench_mine_pump_search(benchmark, model, report):
    """The headline search: feasible schedule over 30 000 time units."""
    result = benchmark(find_schedule, model)
    assert result.feasible
    assert result.minimum_firings == PAPER_MIN_STATES
    # tie-breaking differs from the original tool; stay within 10%
    assert (
        PAPER_MIN_STATES
        <= result.stats.states_visited
        <= int(PAPER_VISITED * 1.10)
    )
    report("E1", "minimum states", PAPER_MIN_STATES,
           result.minimum_firings)
    report("E1", "states visited", PAPER_VISITED,
           result.stats.states_visited)
    report(
        "E1",
        "search time (different hw)",
        f"{PAPER_MS_ATHLON_1800} ms",
        f"{result.stats.elapsed_seconds * 1000:.0f} ms",
    )


def bench_mine_pump_extract_and_validate(benchmark, model, report):
    """Schedule extraction + full constraint validation."""
    result = find_schedule(model)

    def run():
        schedule = schedule_from_result(model, result, check=False)
        violations = validate_schedule(model, schedule)
        return schedule, violations

    schedule, violations = benchmark(run)
    assert violations == []
    assert len({(s.task, s.instance) for s in schedule.segments}) == (
        PAPER_INSTANCES
    )
    report("E1", "deadline misses over PS", 0, len(violations))
    report("E1", "schedule makespan", "<= 30000", schedule.makespan)
