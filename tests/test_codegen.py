"""Tests for scheduled C code generation."""

import shutil

import pytest

from repro.blocks import compose
from repro.codegen import (
    TARGETS,
    banner,
    block_comment,
    c_identifier,
    generate_project,
    get_target,
    include_guard,
    indent,
    render_dispatcher,
    render_paper_style,
    render_schedule_header,
    render_schedule_source,
    render_tasks_source,
)
from repro.errors import CodeGenError
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import fig8_preemptive, mine_pump


@pytest.fixture(scope="module")
def fig8_bundle():
    model = compose(fig8_preemptive())
    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    return model, schedule


class TestTemplates:
    def test_c_identifier(self):
        assert c_identifier("TaskA") == "TaskA"
        assert c_identifier("my-task 1") == "my_task_1"
        assert c_identifier("9lives") == "_9lives"

    def test_c_identifier_empty_rejected(self):
        with pytest.raises(CodeGenError):
            c_identifier("")
        # special characters sanitise to underscores
        assert c_identifier("***") == "___"
        assert c_identifier("a*b") == "a_b"

    def test_banner(self):
        text = banner("Title", "line one")
        assert text.startswith("/*")
        assert text.endswith("*/")
        assert "Title" in text

    def test_include_guard(self):
        guarded = include_guard("schedule", "int x;")
        assert "#ifndef EZRT_SCHEDULE_H" in guarded
        assert guarded.strip().endswith("#endif /* EZRT_SCHEDULE_H */")

    def test_indent(self):
        assert indent("a\nb") == "    a\n    b"
        assert indent("a", levels=2) == "        a"

    def test_block_comment(self):
        assert block_comment("hi") == "/* hi */"
        multi = block_comment("a\nb")
        assert multi.startswith("/*") and multi.endswith("*/")


class TestPaperStyleTable:
    def test_format(self, fig8_bundle):
        _model, schedule = fig8_bundle
        text = render_paper_style(schedule.items)
        lines = text.splitlines()
        assert lines[0] == (
            "struct ScheduleItem scheduleTable [SCHEDULE_SIZE] ="
        )
        assert lines[1].startswith("{{")
        assert lines[-1] == "};"
        # every row but the last ends with a comma before the comment
        for line in lines[1:-2]:
            assert "}, /*" in line
        assert "} /*" in lines[-2]

    def test_short_labels(self, fig8_bundle):
        _model, schedule = fig8_bundle
        short = render_paper_style(schedule.items, short_labels=True)
        assert "/* A1 starts */" in short
        full = render_paper_style(schedule.items, short_labels=False)
        assert "/* TaskA1 starts */" in full

    def test_empty_table_rejected(self):
        with pytest.raises(CodeGenError):
            render_paper_style([])

    def test_unsorted_rejected(self, fig8_bundle):
        _model, schedule = fig8_bundle
        items = list(reversed(schedule.items))
        with pytest.raises(CodeGenError):
            render_paper_style(items)


class TestEmitters:
    def test_header_constants(self, fig8_bundle):
        model, schedule = fig8_bundle
        header = render_schedule_header(model, schedule)
        assert (
            f"#define EZRT_SCHEDULE_SIZE {len(schedule.items)}u"
            in header
        )
        assert "#define EZRT_SCHEDULE_PERIOD 34u" in header
        assert "struct ScheduleItem" in header

    def test_source_has_comments(self, fig8_bundle):
        model, schedule = fig8_bundle
        source = render_schedule_source(model, schedule)
        assert "/* TaskB1 preempts TaskA1 */" in source
        assert "scheduleTable[EZRT_SCHEDULE_SIZE]" in source

    def test_tasks_source_embeds_bodies(self):
        model = compose(mine_pump())
        source = render_tasks_source(model)
        assert "pump_motor_control();" in source
        assert "void PMC(void)" in source
        assert "#ifdef EZRT_HOSTSIM" in source

    def test_dispatcher_per_target(self, fig8_bundle):
        model, _schedule = fig8_bundle
        for name, profile in TARGETS.items():
            text = render_dispatcher(model, profile)
            assert profile.isr_signature.splitlines()[0] in text
            if name == "8051":
                assert "interrupt 1" in text
            if name == "arm9":
                assert '__attribute__((interrupt("IRQ")))' in text

    def test_get_target_unknown(self):
        with pytest.raises(CodeGenError):
            get_target("z80")


class TestProjectGeneration:
    def test_file_set(self, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule)
        assert set(project.files) == {
            "ezrt_schedule.h",
            "ezrt_schedule.c",
            "ezrt_tasks.h",
            "ezrt_tasks.c",
            "ezrt_dispatcher.c",
            "main.c",
            "Makefile",
            "README.txt",
        }
        assert project.source_files == [
            "ezrt_dispatcher.c",
            "ezrt_schedule.c",
            "ezrt_tasks.c",
            "main.c",
        ]

    def test_write(self, tmp_path, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule)
        paths = project.write(str(tmp_path / "out"))
        assert len(paths) == 8
        content = (tmp_path / "out" / "ezrt_schedule.c").read_text()
        assert "scheduleTable" in content

    def test_embedded_targets_not_runnable(self, tmp_path, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule, "8051")
        with pytest.raises(CodeGenError, match="not runnable"):
            project.compile_and_run(str(tmp_path / "x"))

    def test_empty_schedule_rejected(self, fig8_bundle):
        from repro.scheduler import TaskLevelSchedule

        model, _schedule = fig8_bundle
        empty = TaskLevelSchedule(
            segments=[], items=[], schedule_period=34
        )
        with pytest.raises(CodeGenError):
            generate_project(model, empty)

    def test_readme_mentions_tasks(self, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule)
        readme = project.files["README.txt"]
        assert "TaskA" in readme and "schedule period" in readme


@pytest.mark.skipif(
    shutil.which("cc") is None, reason="no host C compiler"
)
class TestCompileAndRun:
    def test_fig8_hostsim_runs(self, tmp_path, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule, "hostsim")
        output = project.compile_and_run(str(tmp_path / "build"))
        assert "schedule period 34 finished" in output
        assert "12 dispatches" in output
        assert "5 resumes" in output

    def test_mine_pump_hostsim_runs(self, tmp_path):
        model = compose(mine_pump())
        result = find_schedule(model)
        schedule = schedule_from_result(model, result)
        project = generate_project(model, schedule, "hostsim")
        output = project.compile_and_run(str(tmp_path / "build"))
        assert "schedule period 30000 finished" in output
        assert "782 dispatches" in output

    def test_dispatch_order_matches_table(self, tmp_path, fig8_bundle):
        model, schedule = fig8_bundle
        project = generate_project(model, schedule, "hostsim")
        output = project.compile_and_run(str(tmp_path / "build"))
        dispatched = [
            line.split("(")[1].rstrip(")")
            for line in output.splitlines()
            if line.startswith("t=") and "dispatch" in line
        ]
        fresh_starts = [
            item.task for item in schedule.items if not item.preempted
        ]
        assert dispatched == fresh_starts
