"""Service-grade tests for the synthesis HTTP front end.

Covers the tentpole contract of :mod:`repro.service` end to end:

* the JSON spec codec that makes content-addressed dedup work across
  clients (fingerprint-preserving round-trips);
* the SSE codec (canonical encode, tolerant decode, fuzzed byte-stable
  round-trips) and the bounded drop-and-flag subscriber queue;
* the :meth:`ResultCache.get_or_compute` read-through layer under
  multi-process hammering, including crash injection (writer killed
  mid-publish) — exactly-once compute, no torn reads;
* the HTTP/1.1 contract (error statuses, keep-alive, HEAD, limits);
* the jobs API: submission, dedup dispositions, SSE streams, strong
  ETags, degradation under client disconnect / job timeout / worker
  crash;
* deterministic JSONL audit logs and verdict parity — every feasible
  schedule the service serves replays cleanly through the checked
  reference engine.

Hermeticity: every server binds ``127.0.0.1`` port 0 (ephemeral), and
socket-using tests skip with a visible reason when the runner forbids
loopback binds.  The existing parallel/batch suites are socket-free;
this file is the only network user in the tree.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import multiprocessing
import os
import random
import signal
import socket
import string
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.batch import BatchEngine, ResultCache
from repro.blocks import compose
from repro.errors import DSLError, SchedulingError
from repro.scheduler import SchedulerConfig
from repro.scheduler.parallel import validate_with_reference
from repro.service import (
    EventQueue,
    ServerEvent,
    decode_stream,
    encode_comment,
    encode_event,
    run_in_thread,
)
from repro.spec import paper_examples
from repro.spec.builder import SpecBuilder
from repro.spec.examples import mine_pump
from repro.spec.jsonio import spec_from_json, spec_to_json
from repro.workloads import random_task_set
from repro.batch.cache import spec_fingerprint


# ----------------------------------------------------------------------
# Hermeticity guard: every server here binds an ephemeral loopback
# port; when the runner forbids even that, skip loudly instead of
# erroring obscurely mid-test.
# ----------------------------------------------------------------------
def _loopback_available() -> bool:
    try:
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


needs_loopback = pytest.mark.skipif(
    not _loopback_available(),
    reason="runner forbids binding loopback sockets",
)

#: the heavy-backtracking feasible instance the parallel suite uses —
#: hundreds of thousands of states under the default ordering, so a
#: job over it stays observably *running* long enough to disconnect
#: from (always submitted with a timeout cap to bound the test)
HARD_KWARGS = dict(
    n_tasks=5,
    total_utilization=0.85,
    seed=7,
    preemptive_fraction=1.0,
    deadline_slack=0.7,
)


def _two_task_doc(name: str = "two-task") -> dict:
    spec = (
        SpecBuilder(name)
        .processor("proc0")
        .task("A", computation=2, deadline=10, period=10)
        .task("B", computation=3, deadline=10, period=10)
        .build()
    )
    return spec_to_json(spec)


def _overloaded_doc() -> dict:
    """Utilisation > 1 on one processor: provably infeasible, so the
    pre-search lint gate answers 422 without creating a job."""
    spec = (
        SpecBuilder("overloaded")
        .task("A", computation=7, deadline=10, period=10)
        .task("B", computation=7, deadline=10, period=10)
        .build()
    )
    return spec_to_json(spec)


def _tight_pair_doc() -> dict:
    """Search-refuted infeasible: U == 1.0 and every necessary
    condition holds, but two zero-laxity non-preemptive tasks cannot
    both meet their deadlines — the lint gate passes it through and
    the DFS refutes it in a handful of states."""
    spec = (
        SpecBuilder("tight-pair")
        .task("A", computation=5, deadline=5, period=10)
        .task("B", computation=5, deadline=5, period=10)
        .build()
    )
    return spec_to_json(spec)


class Client:
    """Tiny http.client wrapper: one connection per call, JSON in/out."""

    def __init__(self, port: int, timeout: float = 30.0):
        self.port = port
        self.timeout = timeout

    def request(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def get(self, path, headers=None):
        status, hdrs, body = self.request("GET", path, headers=headers)
        doc = json.loads(body) if body else None
        return status, hdrs, doc

    def post(self, path, doc):
        status, hdrs, body = self.request(
            "POST",
            path,
            body=json.dumps(doc),
            headers={"content-type": "application/json"},
        )
        return status, hdrs, json.loads(body) if body else None

    def submit(self, spec_doc, timeout=None):
        body = {"spec": spec_doc}
        if timeout is not None:
            body["timeout"] = timeout
        return self.post("/jobs", body)

    def wait_done(self, job_id: str, deadline: float = 60.0) -> dict:
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            status, _, doc = self.get(f"/jobs/{job_id}")
            assert status == 200
            if doc["state"] == "done":
                return doc
            time.sleep(0.02)
        raise AssertionError(f"{job_id} did not finish in {deadline}s")

    def sse(self, path: str) -> list[ServerEvent]:
        """Read one event stream to connection close and decode it."""
        status, _, raw = self.request("GET", path)
        assert status == 200
        return decode_stream(raw)


@pytest.fixture()
def handle():
    server = run_in_thread(
        BatchEngine(
            store_schedules=True, cache=ResultCache(), max_workers=2
        )
    )
    yield server
    server.stop()


@pytest.fixture()
def client(handle):
    return Client(handle.port)


# ======================================================================
# JSON spec codec
# ======================================================================
class TestSpecJsonCodec:
    def test_round_trip_preserves_fingerprint(self):
        doc = _two_task_doc()
        spec = spec_from_json(doc)
        again = spec_from_json(spec_to_json(spec))
        assert spec_fingerprint(spec) == spec_fingerprint(again)

    @pytest.mark.parametrize(
        "name", sorted(paper_examples().keys())
    )
    def test_paper_examples_round_trip(self, name):
        original = paper_examples()[name]
        parsed = spec_from_json(spec_to_json(original))
        assert spec_fingerprint(parsed) == spec_fingerprint(original)
        assert spec_to_json(parsed) == spec_to_json(original)

    def test_unknown_spec_key_rejected(self):
        doc = _two_task_doc()
        doc["colour"] = "blue"
        with pytest.raises(DSLError, match="colour"):
            spec_from_json(doc)

    def test_unknown_task_key_rejected(self):
        doc = _two_task_doc()
        doc["tasks"][0]["computaton"] = 2  # the classic typo
        with pytest.raises(DSLError, match="computaton"):
            spec_from_json(doc)

    def test_missing_required_task_field(self):
        doc = _two_task_doc()
        del doc["tasks"][0]["deadline"]
        with pytest.raises(DSLError, match="deadline"):
            spec_from_json(doc)

    def test_bad_scheduling_value(self):
        doc = _two_task_doc()
        doc["tasks"][0]["scheduling"] = "sometimes"
        with pytest.raises(Exception):
            spec_from_json(doc)

    def test_bool_is_not_an_integer(self):
        doc = _two_task_doc()
        doc["tasks"][0]["computation"] = True
        with pytest.raises(DSLError, match="integer"):
            spec_from_json(doc)

    def test_relations_survive_round_trip(self):
        spec = (
            SpecBuilder("related")
            .task("A", computation=1, deadline=10, period=10)
            .task("B", computation=1, deadline=10, period=10)
            .task("C", computation=1, deadline=10, period=10)
            .precedence("A", "B")
            .exclusion("B", "C")
            .build()
        )
        parsed = spec_from_json(spec_to_json(spec))
        assert parsed.task("A").precedes_tasks == ["B"]
        assert "C" in parsed.task("B").excludes_tasks
        assert "B" in parsed.task("C").excludes_tasks
        assert spec_fingerprint(parsed) == spec_fingerprint(spec)


# ======================================================================
# SSE codec
# ======================================================================
class TestSseCodec:
    def test_encode_minimal_event(self):
        wire = encode_event(ServerEvent(data="hi"))
        assert wire == b"data: hi\n\n"

    def test_encode_multiline_data(self):
        wire = encode_event(
            ServerEvent(data="a\nb", event="tick", id="7")
        )
        assert wire == b"event: tick\nid: 7\ndata: a\ndata: b\n\n"

    def test_decode_normalises_crlf_and_cr(self):
        events = decode_stream(
            b"event: x\r\ndata: one\r\rdata: two\n\n"
        )
        assert [e.data for e in events] == ["one", "two"]
        assert events[0].event == "x"

    def test_decode_skips_comments_and_unknown_fields(self):
        events = decode_stream(
            b": keep-alive\nwhatever: ignored\ndata: payload\n\n"
        )
        assert len(events) == 1
        assert events[0].data == "payload"

    def test_decode_ignores_non_integer_retry(self):
        events = decode_stream(b"retry: soon\ndata: x\n\n")
        assert events[0].retry is None

    def test_decode_discards_incomplete_tail(self):
        # a connection cut mid-event must not fabricate a half event
        events = decode_stream(b"data: full\n\ndata: torn-off")
        assert [e.data for e in events] == ["full"]

    def test_comment_round_trip_is_invisible(self):
        wire = encode_event(ServerEvent(data="x")) + encode_comment(
            "keep-alive"
        )
        assert [e.data for e in decode_stream(wire)] == ["x"]

    def test_service_event_payload_round_trip(self):
        event = ServerEvent.of(
            "done", {"job": "job-1", "feasible": True}, id="job-1"
        )
        (back,) = decode_stream(encode_event(event))
        assert back == event
        assert back.payload() == {"job": "job-1", "feasible": True}

    @pytest.mark.parametrize("seed", range(5))
    def test_fuzz_round_trip_byte_stable(self, seed):
        """encode→decode→encode is the identity on random sequences."""
        rng = random.Random(seed)
        alphabet = string.ascii_letters + string.digits + " {}:,\"'é—"

        def rand_text(allow_newlines):
            n = rng.randrange(0, 40)
            text = "".join(rng.choice(alphabet) for _ in range(n))
            if allow_newlines and n and rng.random() < 0.4:
                cut = rng.randrange(n)
                text = text[:cut] + "\n" + text[cut:]
            return text

        events = [
            ServerEvent(
                data=rand_text(allow_newlines=True),
                event=(
                    rand_text(False).replace(" ", "") or None
                    if rng.random() < 0.6
                    else None
                ),
                id=(
                    f"id-{rng.randrange(1000)}"
                    if rng.random() < 0.5
                    else None
                ),
                retry=(
                    rng.randrange(1, 10_000)
                    if rng.random() < 0.3
                    else None
                ),
            )
            for _ in range(rng.randrange(1, 30))
        ]
        wire = b"".join(encode_event(e) for e in events)
        decoded = decode_stream(wire)
        assert decoded == events
        assert b"".join(encode_event(e) for e in decoded) == wire


# ======================================================================
# Bounded subscriber queue
# ======================================================================
class TestEventQueue:
    def _drain(self, queue):
        async def go():
            chunks = []
            while True:
                chunk = await queue.next_chunk()
                if chunk is None:
                    return chunks
                chunks.append(chunk)

        return asyncio.run(go())

    def test_fifo_delivery(self):
        queue = EventQueue(maxsize=8)
        for i in range(3):
            queue.publish(ServerEvent.of("n", {"i": i}))
        queue.close()
        events = decode_stream(b"".join(self._drain(queue)))
        assert [e.payload()["i"] for e in events] == [0, 1, 2]

    def test_overflow_drops_oldest_and_flags(self):
        queue = EventQueue(maxsize=4)
        for i in range(10):
            queue.publish(ServerEvent.of("n", {"i": i}))
        queue.close()
        events = decode_stream(b"".join(self._drain(queue)))
        # first delivered event is the synthetic drop marker
        assert events[0].event == "dropped"
        assert events[0].payload()["events"] == 6
        assert [e.payload()["i"] for e in events[1:]] == [6, 7, 8, 9]

    def test_terminal_event_survives_overflow(self):
        queue = EventQueue(maxsize=2)
        for i in range(5):
            queue.publish(ServerEvent.of("n", {"i": i}))
        queue.publish(
            ServerEvent.of("done", {"final": True}), terminal=True
        )
        queue.close()
        events = decode_stream(b"".join(self._drain(queue)))
        assert events[-1].event == "done"

    def test_publisher_never_blocks(self):
        """10x maxsize synchronous publishes complete with no reader."""
        queue = EventQueue(maxsize=16)
        started = time.monotonic()
        for i in range(160):
            queue.publish(ServerEvent.of("n", {"i": i}))
        assert time.monotonic() - started < 1.0
        assert queue.pending <= 16
        assert queue.dropped == 160 - 16

    def test_close_drains_then_ends(self):
        queue = EventQueue(maxsize=8)
        queue.publish(ServerEvent.of("n", {"i": 1}))
        queue.close()

        async def go():
            first = await queue.next_chunk()
            second = await queue.next_chunk()
            return first, second

        first, second = asyncio.run(go())
        assert first is not None
        assert second is None

    def test_heartbeat_comment_when_idle(self):
        queue = EventQueue(maxsize=8)

        async def go():
            return await queue.next_chunk(heartbeat=0.01)

        chunk = asyncio.run(go())
        assert chunk.startswith(b":")
        assert decode_stream(chunk) == []  # invisible to parsers


# ======================================================================
# ResultCache read-through layer (multi-process property suite)
# ======================================================================
def _hammer_worker(args):
    """Pool worker: get_or_compute with a compute that leaves a marker
    file per invocation — the exactly-once evidence."""
    directory, markers, key, worker_id = args
    cache = ResultCache(directory)

    def compute():
        marker = os.path.join(
            markers, f"{key}-{worker_id}-{os.getpid()}"
        )
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("computed")
        time.sleep(0.05)  # widen the race window
        return {"key": key, "blob": key * 5000}

    return cache.get_or_compute(key, compute, poll_interval=0.002)


def _crashing_writer(directory: str, key: str) -> None:
    """Take the lock, write a torn temp file, die before the rename —
    the worst-case crash point of ``put``."""
    cache = ResultCache(directory)
    assert cache._try_lock(key)
    fd, _ = tempfile.mkstemp(dir=directory, suffix=".tmp")
    os.write(fd, b'{"partial": tru')
    os.close(fd)
    os._exit(1)


class TestResultCacheConcurrency:
    def test_memory_cache_computes_once_per_key(self):
        cache = ResultCache()
        calls = []
        for _ in range(5):
            cache.get_or_compute(
                "k", lambda: calls.append(1) or {"v": 1}
            )
        assert len(calls) == 1
        assert cache.hits == 4 and cache.misses == 1

    def test_exactly_once_across_processes(self, tmp_path):
        directory = str(tmp_path / "cache")
        markers = str(tmp_path / "markers")
        os.makedirs(markers)
        keys = ["alpha", "beta", "gamma"]
        # overlapping fingerprints: every worker hammers every key
        work = [
            (directory, markers, key, wid)
            for wid in range(4)
            for key in keys
        ]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_hammer_worker, work)
        for key in keys:
            computes = [
                m for m in os.listdir(markers) if m.startswith(key)
            ]
            assert len(computes) == 1, (
                f"{key} computed {len(computes)} times"
            )
        # no torn reads: every caller saw the one complete payload
        for (_, _, key, _), payload in zip(work, results):
            assert payload == {"key": key, "blob": key * 5000}

    def test_stale_lock_of_dead_owner_is_broken(self, tmp_path):
        directory = str(tmp_path)
        cache = ResultCache(directory)
        # a pid that provably exited: a child we already reaped
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        dead_pid = child.pid
        child.wait(timeout=30)
        with open(
            cache._lock_path("k"), "w", encoding="ascii"
        ) as fh:
            fh.write(str(dead_pid))
        payload = cache.get_or_compute(
            "k", lambda: {"v": 42}, poll_interval=0.001
        )
        assert payload == {"v": 42}
        assert not os.path.exists(cache._lock_path("k"))

    def test_writer_killed_mid_publish_recovers(self, tmp_path):
        directory = str(tmp_path)
        ctx = multiprocessing.get_context("fork")
        crasher = ctx.Process(
            target=_crashing_writer, args=(directory, "k")
        )
        crasher.start()
        crasher.join(timeout=30)
        assert crasher.exitcode == 1
        cache = ResultCache(directory)
        # the torn temp file and the dead owner's lock are both on
        # disk; the entry must read as absent, never as a fragment
        assert cache._read("k") is None
        payload = cache.get_or_compute(
            "k",
            lambda: {"v": "complete"},
            poll_interval=0.001,
            stale_seconds=0.0,
        )
        assert payload == {"v": "complete"}
        assert ResultCache(directory).get("k") == {"v": "complete"}

    def test_torn_entry_file_reads_as_absent(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(
            cache._path("k"), "w", encoding="utf-8"
        ) as fh:
            fh.write('{"status": "feasib')  # truncated mid-write
        assert cache.get("k") is None
        payload = cache.get_or_compute("k", lambda: {"ok": True})
        assert payload == {"ok": True}
        assert ResultCache(str(tmp_path)).get("k") == {"ok": True}

    def test_wait_timeout_computes_inline(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache._try_lock("k")  # a live owner (our own pid) ...
        try:
            started = time.monotonic()
            payload = cache.get_or_compute(
                "k",
                lambda: {"v": "inline"},
                poll_interval=0.001,
                wait_timeout=0.05,
            )
            # ... so the waiter gives up and computes for itself
            assert payload == {"v": "inline"}
            assert time.monotonic() - started < 10.0
        finally:
            cache._unlock("k")

    def test_clear_removes_lock_and_tmp_litter(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"v": 1})
        cache._try_lock("other")
        with open(
            os.path.join(str(tmp_path), "litter.tmp"), "w"
        ) as fh:
            fh.write("x")
        cache.clear()
        assert os.listdir(str(tmp_path)) == []

    def test_accounting_one_hit_or_miss_per_call(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.get_or_compute("k", lambda: {"v": 1})
        assert (cache.hits, cache.misses) == (0, 1)
        cache.get_or_compute("k", lambda: {"v": 1})
        assert (cache.hits, cache.misses) == (1, 1)


# ======================================================================
# HTTP/1.1 contract
# ======================================================================
@needs_loopback
class TestHttpContract:
    def test_unknown_route_404(self, client):
        status, _, doc = client.get("/nope")
        assert status == 404
        assert "no route" in doc["error"]

    def test_post_on_get_route_405_with_allow(self, client):
        status, headers, _ = client.post("/healthz", {})
        assert status == 405
        assert "GET" in headers.get("allow", "")

    def test_unsupported_method_405(self, client):
        status, _, body = client.request("PUT", "/jobs", body=b"{}")
        assert status == 405

    def test_malformed_json_body_400(self, client):
        status, _, body = client.request(
            "POST", "/jobs", body=b"{not json"
        )
        assert status == 400
        assert b"not valid JSON" in body

    def test_non_object_body_400(self, client):
        status, _, body = client.request(
            "POST", "/jobs", body=b"[1,2,3]"
        )
        assert status == 400
        assert b"JSON object" in body

    def test_oversized_body_413(self, handle):
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"content-length: 99999999999\r\n\r\n"
            )
            reply = raw.recv(4096)
        assert b"413" in reply.split(b"\r\n", 1)[0]

    def test_post_without_length_411(self, handle):
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        ) as raw:
            raw.sendall(b"POST /jobs HTTP/1.1\r\n\r\n")
            reply = raw.recv(4096)
        assert b"411" in reply.split(b"\r\n", 1)[0]

    def test_overlong_request_line_431(self, handle):
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        ) as raw:
            raw.sendall(
                b"GET /" + b"a" * 10000 + b" HTTP/1.1\r\n\r\n"
            )
            reply = raw.recv(4096)
        assert b"431" in reply.split(b"\r\n", 1)[0]

    def test_chunked_body_rejected_501(self, handle):
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"transfer-encoding: chunked\r\n\r\n"
            )
            reply = raw.recv(4096)
        assert b"501" in reply.split(b"\r\n", 1)[0]

    def test_malformed_request_line_400(self, handle):
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        ) as raw:
            raw.sendall(b"NONSENSE\r\n\r\n")
            reply = raw.recv(4096)
        assert b"400" in reply.split(b"\r\n", 1)[0]

    def test_keep_alive_serves_sequential_requests(self, handle):
        conn = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10
        )
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_head_omits_body(self, client):
        status, headers, body = client.request("HEAD", "/healthz")
        assert status == 200
        assert body == b""
        assert int(headers["content-length"]) > 0

    def test_healthz_shape(self, client):
        status, _, doc = client.get("/healthz")
        assert status == 200
        assert doc["ok"] is True
        assert set(doc) == {"ok", "jobs", "inflight"}

    def test_metrics_exposes_service_counters(self, client):
        client.get("/healthz")
        status, _, doc = client.get("/metrics")
        assert status == 200
        assert doc["counters"]["service.requests"] >= 1
        assert "service.submit_latency_p99_ms" in doc["gauges"]


# ======================================================================
# Jobs API
# ======================================================================
@needs_loopback
class TestJobsApi:
    def test_submit_returns_201_with_links(self, client):
        status, _, doc = client.submit(_two_task_doc())
        assert status == 201
        assert doc["job"] == "job-1"
        assert doc["disposition"] == "computed"
        assert len(doc["fingerprint"]) == 64
        assert doc["links"]["result"].endswith(doc["fingerprint"])

    def test_submit_rejects_unknown_keys(self, client):
        status, _, doc = client.post(
            "/jobs", {"spec": _two_task_doc(), "urgent": True}
        )
        assert status == 400
        assert "urgent" in doc["error"]

    def test_submit_requires_spec_object(self, client):
        status, _, doc = client.post("/jobs", {"timeout": 1.0})
        assert status == 400
        assert "spec" in doc["error"]

    @pytest.mark.parametrize("bad", [0, -2, "fast", True])
    def test_submit_rejects_bad_timeout(self, client, bad):
        status, _, doc = client.post(
            "/jobs", {"spec": _two_task_doc(), "timeout": bad}
        )
        assert status == 400
        assert "timeout" in doc["error"]

    def test_submit_invalid_spec_422(self, client):
        doc = _two_task_doc()
        del doc["tasks"][0]["period"]
        status, _, reply = client.submit(doc)
        assert status == 422
        assert "invalid spec" in reply["error"]

    def test_job_visible_in_listing_and_get(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        status, _, listing = client.get("/jobs")
        assert status == 200
        assert [j["job"] for j in listing["jobs"]] == [
            submitted["job"]
        ]
        status, _, single = client.get(f"/jobs/{submitted['job']}")
        assert status == 200
        assert single["fingerprint"] == submitted["fingerprint"]

    def test_unknown_job_404(self, client):
        status, _, doc = client.get("/jobs/job-999")
        assert status == 404

    def test_feasible_job_completes(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        done = client.wait_done(submitted["job"])
        assert done["status"] == "feasible"

    def test_infeasible_spec_outcome(self, client):
        # search-refuted infeasible, not lint-rejected: the gate lets
        # it through and the DFS produces the verdict
        _, _, submitted = client.submit(_tight_pair_doc())
        done = client.wait_done(submitted["job"])
        assert done["status"] == "infeasible"

    def test_trivially_infeasible_rejected_422(self, client, handle):
        status, _, reply = client.submit(_overloaded_doc())
        assert status == 422
        assert "trivially infeasible" in reply["error"]
        codes = [d["code"] for d in reply["diagnostics"]]
        assert "EZS101" in codes
        severities = {d["severity"] for d in reply["diagnostics"]}
        assert "error" in severities
        # no job record was created and the pool never computed
        _, _, listing = client.get("/jobs")
        assert listing["jobs"] == []
        counters = handle.service.bridge.metrics.snapshot()["counters"]
        assert counters.get("bridge.computed", 0) == 0
        assert counters.get("bridge.submissions", 0) == 0

    def test_tiny_budget_times_out(self, client):
        _, _, submitted = client.submit(
            spec_to_json(mine_pump()), timeout=1e-6
        )
        done = client.wait_done(submitted["job"])
        assert done["status"] == "timeout"

    def test_resubmit_after_done_is_cached(self, client, handle):
        _, _, first = client.submit(_two_task_doc())
        client.wait_done(first["job"])
        status, _, second = client.submit(_two_task_doc())
        assert status == 201
        assert second["disposition"] == "cached"
        assert second["state"] == "done"
        assert second["fingerprint"] == first["fingerprint"]
        # the hit bypassed the pool: still exactly one compute
        counters = handle.service.bridge.metrics.snapshot()["counters"]
        assert counters.get("bridge.computed") == 1
        assert counters.get("bridge.cache_hits") == 1

    def test_result_carries_firing_schedule(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        client.wait_done(submitted["job"])
        status, _, payload = client.get(
            f"/results/{submitted['fingerprint']}"
        )
        assert status == 200
        assert payload["status"] == "feasible"
        schedule = payload["firing_schedule"]
        assert schedule and all(len(e) == 3 for e in schedule)

    def test_result_strong_etag_and_304(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        client.wait_done(submitted["job"])
        path = f"/results/{submitted['fingerprint']}"
        status, headers, _ = client.get(path)
        etag = headers["etag"]
        assert etag == f'"{submitted["fingerprint"]}"'
        status, headers, body = client.request(
            "GET", path, headers={"if-none-match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["etag"] == etag

    def test_result_unknown_fingerprint_404(self, client):
        status, _, doc = client.get("/results/" + "0" * 64)
        assert status == 404


# ======================================================================
# SSE streams
# ======================================================================
@needs_loopback
class TestSseStream:
    def test_stream_ends_with_done_event(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        events = client.sse(f"/jobs/{submitted['job']}/events")
        kinds = [e.event for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        done = events[-1].payload()
        assert done["status"] == "feasible"
        assert done["states_visited"] > 0
        assert done["states_per_second"] > 0
        assert done["result"] == f"/results/{submitted['fingerprint']}"

    def test_late_subscriber_gets_replay(self, client):
        _, _, submitted = client.submit(_two_task_doc())
        client.wait_done(submitted["job"])
        events = client.sse(f"/jobs/{submitted['job']}/events")
        assert [e.event for e in events] == ["queued", "done"]

    def test_sse_events_carry_metrics_snapshot(self, client):
        doc = spec_to_json(random_task_set(**HARD_KWARGS))
        _, _, submitted = client.submit(doc, timeout=8.0)
        events = client.sse(f"/jobs/{submitted['job']}/events")
        progress = [e for e in events if e.event == "progress"]
        if progress:  # only present while the job was still running
            payload = progress[0].payload()
            assert payload["submissions"] >= 1
            assert "elapsed_seconds" in payload

    def test_progress_events_carry_live_search_counters(
        self, client, handle
    ):
        """A running job's ``progress`` events forward the worker's
        spooled search counters (states visited, states/sec, engine
        slot) once the first heartbeat sample lands."""
        doc = spec_to_json(random_task_set(**HARD_KWARGS))
        _, _, submitted = client.submit(doc, timeout=8.0)
        events = client.sse(f"/jobs/{submitted['job']}/events")
        live = [
            e.payload()
            for e in events
            if e.event == "progress"
            and "states_visited" in e.payload()
        ]
        # the hard instance searches for seconds while both the spool
        # (0.25s) and the ticker (0.25s) sample much faster, so live
        # samples must appear in the stream
        assert live
        sample = live[-1]
        assert sample["states_visited"] > 0
        assert sample["states_per_sec"] >= 0
        assert sample["depth"] >= 0
        assert sample["slot"] == SchedulerConfig().engine
        # monotone within the stream: later events never report fewer
        # visited states than earlier ones
        visited = [s["states_visited"] for s in live]
        assert visited == sorted(visited)
        # terminal cleanup: the spool file is gone once the job is done
        client.wait_done(submitted["job"])
        spool_dir = handle.service.manager.progress_dir
        assert spool_dir is not None
        assert f"{submitted['fingerprint']}.json" not in os.listdir(
            spool_dir
        )

    def test_disconnect_removes_subscriber(self, client, handle):
        doc = spec_to_json(random_task_set(**HARD_KWARGS))
        _, _, submitted = client.submit(doc, timeout=6.0)
        conn = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10
        )
        conn.request("GET", f"/jobs/{submitted['job']}/events")
        conn.getresponse()  # headers received: stream established
        conn.close()  # client walks away mid-stream
        record = handle.service.manager.record(submitted["job"])
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if not record.subscribers:
                break
            time.sleep(0.05)
        assert not record.subscribers
        # the service is unharmed: the job still finishes and the
        # next request is served normally
        client.wait_done(submitted["job"])
        assert client.get("/healthz")[0] == 200


# ======================================================================
# Degradation: dedup under concurrency, worker crashes
# ======================================================================
@needs_loopback
class TestDegradation:
    def test_concurrent_identical_submissions_compute_once(
        self, handle
    ):
        doc = _two_task_doc("stampede")
        body = {"spec": doc, "timeout": 10.0}
        results: list[dict] = []
        errors: list[Exception] = []

        def submit_one():
            try:
                _, _, reply = Client(handle.port).post("/jobs", body)
                results.append(reply)
            except Exception as err:  # pragma: no cover - diagnostics
                errors.append(err)

        threads = [
            threading.Thread(target=submit_one) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        fingerprints = {r["fingerprint"] for r in results}
        assert len(fingerprints) == 1
        dispositions = sorted(r["disposition"] for r in results)
        assert dispositions.count("computed") == 1
        assert all(
            d in ("computed", "deduplicated", "cached")
            for d in dispositions
        )
        # the hard evidence: the pool executed the job exactly once
        client = Client(handle.port)
        for reply in results:
            client.wait_done(reply["job"])
        counters = handle.service.bridge.metrics.snapshot()["counters"]
        assert counters.get("bridge.computed") == 1
        # and every waiter got the same feasible outcome
        status, _, payload = client.get(
            f"/results/{fingerprints.pop()}"
        )
        assert status == 200
        assert payload["status"] == "feasible"

    def test_worker_crash_yields_error_and_pool_recovers(
        self, monkeypatch
    ):
        monkeypatch.setenv("EZRT_CRASH_SPEC", "crash-me")
        server = run_in_thread(
            BatchEngine(
                store_schedules=True,
                cache=ResultCache(),
                max_workers=1,
            )
        )
        try:
            client = Client(server.port)
            _, _, doomed = client.submit(_two_task_doc("crash-me"))
            done = client.wait_done(doomed["job"])
            assert done["status"] == "error"
            events = client.sse(f"/jobs/{doomed['job']}/events")
            error = events[-1].payload()
            assert error["status"] == "error"
            assert error["error"]  # the crash reason is surfaced
            # degradation, not collapse: the pool was replaced and a
            # healthy submission still synthesises
            _, _, healthy = client.submit(_two_task_doc("healthy"))
            assert client.wait_done(healthy["job"])["status"] == (
                "feasible"
            )
        finally:
            server.stop()


# ======================================================================
# Audit log determinism
# ======================================================================
@needs_loopback
class TestAuditLog:
    def _run_session(self, audit_path: str) -> None:
        server = run_in_thread(
            BatchEngine(
                store_schedules=True, cache=ResultCache(), max_workers=1
            ),
            audit_path=audit_path,
        )
        try:
            client = Client(server.port)
            for doc in (
                _two_task_doc(),
                _tight_pair_doc(),  # searched-infeasible: audited too
                _two_task_doc(),  # cached: still audited
            ):
                _, _, submitted = client.submit(doc)
                client.wait_done(submitted["job"])
        finally:
            server.stop()

    def test_replay_is_byte_identical(self, tmp_path):
        first = str(tmp_path / "a.jsonl")
        second = str(tmp_path / "b.jsonl")
        self._run_session(first)
        self._run_session(second)
        with open(first, "rb") as fh:
            first_bytes = fh.read()
        with open(second, "rb") as fh:
            second_bytes = fh.read()
        assert first_bytes == second_bytes
        assert first_bytes  # and it is not trivially empty

    def test_rows_are_ordered_and_clock_free(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        self._run_session(path)
        with open(path, "r", encoding="utf-8") as fh:
            rows = [json.loads(line) for line in fh]
        assert [row["seq"] for row in rows] == list(
            range(1, len(rows) + 1)
        )
        assert [row["event"] for row in rows] == [
            "submit", "done", "submit", "done", "submit", "done",
        ]
        for row in rows:
            assert not any(
                "time" in key or "stamp" in key for key in row
            )
        # the cached resubmission is visible as such
        assert rows[4]["disposition"] == "cached"


# ======================================================================
# Verdict parity: served schedules replay through the reference engine
# ======================================================================
@needs_loopback
class TestVerdictParity:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: mine_pump(),
            lambda: spec_from_json(_two_task_doc()),
            lambda: random_task_set(4, 0.6, seed=0),
        ],
        ids=["mine-pump", "two-task", "random-4"],
    )
    def test_served_schedule_replays_clean(
        self, client, spec_factory
    ):
        spec = spec_factory()
        _, _, submitted = client.submit(spec_to_json(spec))
        done = client.wait_done(submitted["job"])
        assert done["status"] == "feasible"
        _, _, payload = client.get(
            f"/results/{submitted['fingerprint']}"
        )
        schedule = [
            tuple(entry) for entry in payload["firing_schedule"]
        ]
        net = compose(spec).compiled()
        # raises SchedulingError on any illegal firing or a wrong
        # final marking — serving such a schedule would be the bug
        validate_with_reference(net, SchedulerConfig(), schedule)
        assert payload["makespan"] == schedule[-1][2]

    def test_reference_engine_rejects_tampering(self, client):
        """The parity gate is a real check, not a rubber stamp."""
        spec = spec_from_json(_two_task_doc())
        _, _, submitted = client.submit(spec_to_json(spec))
        client.wait_done(submitted["job"])
        _, _, payload = client.get(
            f"/results/{submitted['fingerprint']}"
        )
        schedule = [
            tuple(entry) for entry in payload["firing_schedule"]
        ]
        net = compose(spec).compiled()
        tampered = [schedule[-1]] + schedule[1:]
        with pytest.raises(SchedulingError):
            validate_with_reference(
                net, SchedulerConfig(), tampered
            )


# ======================================================================
# CLI entry point
# ======================================================================
@needs_loopback
class TestServeCli:
    def test_serve_smoke_and_clean_shutdown(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        try:
            ready = proc.stdout.readline()
            assert "ezrt-service listening on" in ready
            port = int(ready.strip().rsplit(":", 1)[1])
            client = Client(port)
            _, _, submitted = client.submit(_two_task_doc())
            assert client.wait_done(submitted["job"])["status"] == (
                "feasible"
            )
            proc.send_signal(signal.SIGINT)
            # a clean, prompt exit means the worker pool was reaped —
            # leaked children would keep the process wait hanging
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
