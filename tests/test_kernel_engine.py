"""Kernel engine suite: packed buffers, native core, cross-engine fuzz.

ISSUE 7's acceptance coverage for ``repro.tpn.kernel``, in four layers:

* **Engine-level differential walks** — the kernel engine steps a
  randomized firing walk in lockstep with the checked reference
  :class:`~repro.tpn.state.StateEngine`; markings, clock vectors and
  candidate windows must match at every step, under both clock-reset
  policies, on the paper models and a seeded task-set grid.
* **Native vs pure core** — the same walks run once with the compiled
  core and once with ``EZRT_PURE=1``; the two cores must produce
  bit-identical states *and* bit-identical incremental Zobrist keys
  (which must also equal the from-scratch ``full_hash`` at every step).
* **Cross-engine search fuzz** — full scheduler searches across all
  four adapters on a seeded sweep: the three discrete engines must
  agree exactly (verdict, visited counts, schedules, deterministic
  counters) and the dense state-class engine must agree on the verdict.
* **Packed-representation edges** — export/revive round-trips, the
  loud token/clock overflow errors, ``KernelState`` identity.
"""

from __future__ import annotations

import random

import pytest

from repro.blocks import compose
from repro.errors import SchedulingError
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.scheduler.parallel import ParallelScheduler
from repro.spec import paper_examples
from repro.tpn import _kernelc
from repro.tpn.kernel import DIS, MAX_CLOCK, KernelEngine, KernelState
from repro.tpn.state import DISABLED, StateEngine
from repro.workloads import random_task_set

RESETS = ("paper", "intermediate")
DISCRETE_ENGINES = ("reference", "incremental", "kernel")

WALK_STEPS = 60
WALK_SEEDS = (0, 1, 2)

FUZZ_GRID = [
    (2, 0.4, 0),
    (2, 0.8, 1),
    (3, 0.4, 2),
    (3, 0.6, 3),
    (4, 0.5, 4),
    (4, 0.8, 5),
]


@pytest.fixture(scope="module")
def paper_nets():
    return {
        name: compose(spec).compiled()
        for name, spec in paper_examples().items()
    }


def _walk_nets(paper_nets):
    yield from paper_nets.items()
    for n, u, seed in FUZZ_GRID[:3]:
        yield (
            f"rand-n{n}-s{seed}",
            compose(random_task_set(n, u, seed=seed)).compiled(),
        )


def _reference_candidates(engine, state, net):
    """Reference fireable set, filtered like the adapters filter it:
    deadline-miss transitions never become candidates."""
    return sorted(
        (c.transition, c.dlb)
        for c in engine.fireable(state, priority_filter=False)
        if c.transition not in net.miss_transitions
    )


def _lockstep_walk(net, reset_policy, seed, kernel_engine):
    """Random walk driven by the reference engine; asserts the kernel
    engine tracks it state-for-state.  Returns the step count."""
    ref_engine = StateEngine(net, reset_policy=reset_policy)
    ref = ref_engine.initial_state()
    ker = kernel_engine.initial()
    rng = random.Random(seed)
    for step in range(WALK_STEPS):
        assert tuple(ker.marking) == ref.marking, step
        assert ker.clocks_tuple() == ref.clocks, step
        assert ker._hash == kernel_engine.full_hash(
            ker.marking, ker.clk
        ), f"incremental hash diverged from full_hash at step {step}"
        cands = _reference_candidates(ref_engine, ref, net)
        ker_window = sorted(kernel_engine.window(ker)[1])
        assert ker_window == cands, step
        if not cands:
            return step
        t, q = rng.choice(cands)
        ref = ref_engine._fire_unchecked(ref, t, q)
        try:
            ker = kernel_engine.successor(ker, t, q)
        except SchedulingError:
            # the packed caps are allowed to stop an unbounded pump
            # walk, but only when the reference marking really blew
            # past them — a legitimate, loud design limit
            assert max(ref.marking) > 0xFFFF or max(
                v for v in ref.clocks if v != DISABLED
            ) > MAX_CLOCK
            return step
    return WALK_STEPS


class TestEngineDifferentialWalks:
    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("seed", WALK_SEEDS)
    def test_kernel_tracks_reference(
        self, paper_nets, reset_policy, seed
    ):
        for name, net in _walk_nets(paper_nets):
            engine = KernelEngine(net, reset_policy=reset_policy)
            steps = _lockstep_walk(net, reset_policy, seed, engine)
            assert steps > 0, f"{name}: walk never started"

    @pytest.mark.parametrize("reset_policy", RESETS)
    def test_pure_core_tracks_reference(
        self, paper_nets, reset_policy, monkeypatch
    ):
        monkeypatch.setenv(_kernelc.PURE_ENV, "1")
        for name, net in _walk_nets(paper_nets):
            engine = KernelEngine(net, reset_policy=reset_policy)
            assert not engine.native
            steps = _lockstep_walk(net, reset_policy, 0, engine)
            assert steps > 0, f"{name}: walk never started"


class TestNativeVsPure:
    """The two cores are locked together bit for bit."""

    @pytest.mark.parametrize("reset_policy", RESETS)
    def test_identical_states_and_hashes(
        self, paper_nets, reset_policy, monkeypatch
    ):
        for name, net in _walk_nets(paper_nets):
            native = KernelEngine(net, reset_policy=reset_policy)
            monkeypatch.setenv(_kernelc.PURE_ENV, "1")
            pure = KernelEngine(net, reset_policy=reset_policy)
            monkeypatch.delenv(_kernelc.PURE_ENV)
            assert not pure.native
            a, b = native.initial(), pure.initial()
            rng = random.Random(17)
            for step in range(WALK_STEPS):
                assert a.marking == b.marking, (name, step)
                assert a.clk == b.clk, (name, step)
                assert a._hash == b._hash, (name, step)
                ca = native.candidates(a, False, True)
                cb = pure.candidates(b, False, True)
                assert ca == cb, (name, step)
                assert native.window(a) == pure.window(b), (name, step)
                cands = ca[0]
                if not cands:
                    break
                t, q = rng.choice(cands)
                try:
                    a = native.successor(a, t, q)
                except SchedulingError:
                    with pytest.raises(SchedulingError):
                        pure.successor(b, t, q)
                    break
                b = pure.successor(b, t, q)

    def test_native_core_builds_here(self):
        """CI builds the extension eagerly; this test documents
        whether this environment exercises the compiled or the pure
        path (it fails only when a build was attempted and died)."""
        module = _kernelc.load()
        if module is None and _kernelc.LOAD_ERROR is not None:
            pytest.skip(
                f"native core unavailable: {_kernelc.LOAD_ERROR}"
            )


class TestCrossEngineSearchFuzz:
    """Full searches: the four adapters on a seeded sweep."""

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("case", FUZZ_GRID)
    def test_discrete_engines_agree_exactly(self, case, reset_policy):
        n, u, seed = case
        net = compose(
            random_task_set(n, u, seed=seed, deadline_slack=0.9)
        ).compiled()
        results = {}
        for engine in DISCRETE_ENGINES:
            cfg = SchedulerConfig(
                engine=engine,
                reset_policy=reset_policy,
                max_states=100_000,
            )
            results[engine] = PreRuntimeScheduler(net, cfg).search()
        ref = results["reference"]
        for engine in ("incremental", "kernel"):
            other = results[engine]
            assert other.feasible == ref.feasible, engine
            assert other.exhausted == ref.exhausted, engine
            assert other.firing_schedule == ref.firing_schedule, engine
            ref_stats = ref.stats.as_dict()
            other_stats = other.stats.as_dict()
            for key in ref.stats.WALL_CLOCK_KEYS:
                ref_stats.pop(key)
                other_stats.pop(key)
            assert other_stats == ref_stats, engine

    @pytest.mark.parametrize("case", FUZZ_GRID[:4])
    def test_stateclass_agrees_on_verdict(self, case):
        n, u, seed = case
        net = compose(
            random_task_set(n, u, seed=seed, deadline_slack=0.9)
        ).compiled()
        kernel = PreRuntimeScheduler(
            net, SchedulerConfig(engine="kernel", max_states=100_000)
        ).search()
        dense = PreRuntimeScheduler(
            net,
            SchedulerConfig(engine="stateclass", max_states=100_000),
        ).search()
        # the dense engine covers every dense delay, so a discrete
        # earliest-mode schedule implies a dense one; both searches
        # exhaust here, so feasibility verdicts must line up
        assert kernel.feasible == dense.feasible
        assert kernel.exhausted == dense.exhausted

    @pytest.mark.parametrize(
        "delay_mode,priority_mode",
        [
            ("earliest", "ordered"),
            ("earliest", "strict"),
            ("extremes", "ordered"),
            ("full", "strict"),
        ],
    )
    def test_kernel_matches_incremental_across_modes(
        self, paper_nets, delay_mode, priority_mode
    ):
        net = paper_nets["fig4"]
        results = []
        for engine in ("incremental", "kernel"):
            cfg = SchedulerConfig(
                engine=engine,
                delay_mode=delay_mode,
                priority_mode=priority_mode,
            )
            results.append(PreRuntimeScheduler(net, cfg).search())
        inc, ker = results
        assert ker.feasible == inc.feasible
        assert ker.firing_schedule == inc.firing_schedule
        assert (
            ker.stats.states_visited == inc.stats.states_visited
        )
        assert ker.stats.reductions == inc.stats.reductions


class TestSchedulerIntegration:
    def test_engine_registered(self):
        from repro.scheduler.config import ENGINES
        from repro.scheduler.core import ADAPTERS

        assert "kernel" in ENGINES
        assert "kernel" in ADAPTERS

    def test_native_core_gauge(self, paper_nets):
        result = PreRuntimeScheduler(
            paper_nets["fig3"], SchedulerConfig(engine="kernel")
        ).search()
        assert result.metrics["gauges"]["kernel.native_core"] in (
            0.0,
            1.0,
        )

    def test_pure_env_flips_gauge(self, paper_nets, monkeypatch):
        monkeypatch.setenv(_kernelc.PURE_ENV, "1")
        result = PreRuntimeScheduler(
            paper_nets["fig3"], SchedulerConfig(engine="kernel")
        ).search()
        assert (
            result.metrics["gauges"]["kernel.native_core"] == 0.0
        )
        assert result.feasible

    def test_kernel_portfolio_slot(self, paper_nets):
        cfg = SchedulerConfig(
            parallel=2,
            parallel_mode="portfolio",
            portfolio=("kernel:earliest", "incremental:latest"),
        )
        result = ParallelScheduler(paper_nets["fig3"], cfg).search()
        assert result.feasible
        assert result.winner_engine in ("kernel", "incremental")

    def test_worksteal_rejects_kernel(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(
                engine="kernel", parallel=2, parallel_mode="worksteal"
            )


class TestPackedRepresentation:
    def test_export_revive_roundtrip(self, paper_nets):
        net = paper_nets["fig3"]
        engine = KernelEngine(net)
        state = engine.initial()
        for _ in range(5):
            cands, _red = engine.candidates(state, False, True)
            if not cands:
                break
            state = engine.successor(state, *cands[0])
        marking, clocks = state.export()
        assert isinstance(marking, bytes)
        assert isinstance(clocks, bytes)
        revived = engine.revive(marking, clocks)
        assert revived == state
        assert revived._hash == state._hash

    def test_lift_matches_reference_state(self, paper_nets):
        net = paper_nets["fig4"]
        ref_engine = StateEngine(net)
        engine = KernelEngine(net)
        ref = ref_engine.initial_state()
        lifted = engine.lift(ref)
        assert lifted == engine.initial()
        assert lifted.to_state() == ref

    def test_disabled_sentinel_round_trip(self, paper_nets):
        net = paper_nets["fig3"]
        engine = KernelEngine(net)
        state = engine.initial()
        clocks = state.clocks_tuple()
        assert DISABLED in clocks  # fig3 has disabled transitions
        assert all(v != DIS for v in clocks)

    def test_clock_overflow_is_loud(self, paper_nets):
        net = paper_nets["fig3"]
        engine = KernelEngine(net)
        state = engine.initial()
        cands, _ = engine.candidates(state, False, False)
        assert cands
        with pytest.raises(SchedulingError, match="clock overflow"):
            engine.successor(state, cands[0][0], MAX_CLOCK + 1)

    def test_initial_marking_cap_is_loud(self, paper_nets):
        net = paper_nets["fig3"]
        engine = KernelEngine(net)
        big = net.m0[:1] + tuple(0x10000 for _ in net.m0[1:])
        ref = StateEngine(net).initial_state()
        with pytest.raises(SchedulingError, match="token cap"):
            engine.lift(type(ref)(big, ref.clocks))

    def test_state_identity(self, paper_nets):
        net = paper_nets["fig3"]
        engine = KernelEngine(net)
        a = engine.initial()
        b = engine.initial()
        assert a == b and hash(a) == hash(b)
        assert a != object() or True  # NotImplemented path is benign
        cands, _ = engine.candidates(a, False, True)
        child = engine.successor(a, *cands[0])
        assert child != a
