"""Tests for relation modelling (Figs. 3–4) and the spec→TPN composer."""

import pytest

from repro.blocks import (
    BlockStyle,
    ComposerOptions,
    compose,
    exclusion_place_name,
    precedence_place_name,
    task_ranks,
)
from repro.errors import NetConstructionError
from repro.spec import SpecBuilder, fig3_precedence, fig4_exclusion, mine_pump


class TestPrecedenceModel:
    def test_precedence_place_created(self, fig3_model):
        assert fig3_model.net.has_place("pprec_T1_T2")

    def test_finisher_feeds_precedence_place(self, fig3_model):
        net = fig3_model.net
        finisher = fig3_model.nodes["T1"].finisher
        assert net.output_weight(finisher, "pprec_T1_T2") == 1

    def test_gate_consumes_precedence_token(self, fig3_model):
        net = fig3_model.net
        assert net.has_transition("tl_T2")
        assert net.input_weight("pprec_T1_T2", "tl_T2") == 1

    def test_release_rerouted_through_gate(self, fig3_model):
        net = fig3_model.net
        # T2's release now feeds the lock place, not the grant pool
        assert net.output_weight("tr_T2", "pwl_T2") == 1
        assert net.output_weight("tr_T2", "pwg_T2") == 0
        assert net.output_weight("tl_T2", "pwg_T2") == 1

    def test_predecessor_keeps_plain_wiring(self, fig3_model):
        net = fig3_model.net
        assert not net.has_transition("tl_T1")
        assert net.output_weight("tr_T1", "pwg_T1") == 1

    def test_figure3_intervals(self, fig3_model):
        from repro.tpn import TimeInterval

        net = fig3_model.net
        assert net.transition("tr_T1").interval == TimeInterval(0, 85)
        assert net.transition("tc_T1").interval == TimeInterval(15, 15)
        assert net.transition("td_T1").interval == TimeInterval(
            100, 100
        )
        assert net.transition("tr_T2").interval == TimeInterval(0, 130)
        assert net.transition("tc_T2").interval == TimeInterval(20, 20)
        assert net.transition("td_T2").interval == TimeInterval(
            150, 150
        )
        assert net.transition("ta_T1").interval == TimeInterval(
            250, 250
        )

    def test_figure3_arrival_weight(self, fig3_model):
        """PS=500 with periods 250 gives N=2: the figure's weight 2
        corresponds to N−1=1 budget token... the figure draws a_i=2
        labels at the arrival arc of the 2-instance illustration."""
        net = fig3_model.net
        # two instances per task in PS=500
        assert fig3_model.instances["T1"] == 2
        assert net.output_weight("tph_T1", "pwa_T1") == 1


class TestExclusionModel:
    def test_shared_single_token_place(self, fig4_model):
        net = fig4_model.net
        place = net.place("pexcl_T0_T2")
        assert place.marking == 1
        assert place.role == "exclusion"

    def test_both_gates_consume(self, fig4_model):
        net = fig4_model.net
        assert net.input_weight("pexcl_T0_T2", "tl_T0") == 1
        assert net.input_weight("pexcl_T0_T2", "tl_T2") == 1

    def test_finishers_return_token(self, fig4_model):
        net = fig4_model.net
        for task in ("T0", "T2"):
            finisher = fig4_model.nodes[task].finisher
            assert net.output_weight(finisher, "pexcl_T0_T2") == 1

    def test_figure4_weight_c_arcs(self, fig4_model):
        net = fig4_model.net
        # preemptive: gate re-emits c unit tokens (figure's 10/20)
        assert net.output_weight("tl_T0", "pwg_T0") == 10
        assert net.output_weight("tl_T2", "pwg_T2") == 20
        assert net.input_weight("pwf_T0", "tf_T0") == 10
        assert net.input_weight("pwf_T2", "tf_T2") == 20

    def test_figure4_unit_computations(self, fig4_model):
        from repro.tpn import TimeInterval

        net = fig4_model.net
        assert net.transition("tc_T0").interval == TimeInterval(1, 1)
        assert net.transition("tc_T2").interval == TimeInterval(1, 1)

    def test_atomic_multi_lock(self):
        """A task excluding two others acquires all tokens in one gate
        firing (no lock-order deadlock possible)."""
        spec = (
            SpecBuilder("multi")
            .task("A", computation=1, deadline=10, period=10)
            .task("B", computation=1, deadline=10, period=10)
            .task("C", computation=1, deadline=10, period=10)
            .exclusion("A", "B")
            .exclusion("A", "C")
            .build()
        )
        model = compose(spec)
        net = model.net
        gate = "tl_A"
        assert net.input_weight(exclusion_place_name("A", "B"), gate)
        assert net.input_weight(exclusion_place_name("A", "C"), gate)
        preset = net.preset(gate)
        assert len(preset) == 3  # pwl + both exclusion places

    def test_names_are_canonical(self):
        assert exclusion_place_name("B", "A") == exclusion_place_name(
            "A", "B"
        )
        assert precedence_place_name("A", "B") != (
            precedence_place_name("B", "A")
        )


class TestMessages:
    def _spec(self):
        return (
            SpecBuilder("msg")
            .task("S", computation=1, deadline=10, period=10)
            .task("R", computation=2, deadline=10, period=10)
            .message("m", sender="S", receiver="R", communication=2,
                     bus="can0", grant_bus=1)
            .build()
        )

    def test_transfer_block_structure(self):
        model = compose(self._spec())
        net = model.net
        nodes = model.message_nodes["m"]
        assert net.place("pbus_can0").marking == 1
        assert net.input_weight("pbus_can0", nodes["grant"]) == 1
        assert net.output_weight(nodes["transfer"], "pbus_can0") == 1
        from repro.tpn import TimeInterval

        assert net.transition(nodes["grant"]).interval == TimeInterval(
            1, 1
        )
        assert net.transition(
            nodes["transfer"]
        ).interval == TimeInterval(2, 2)

    def test_receiver_gated_by_delivery(self):
        model = compose(self._spec())
        net = model.net
        delivered = model.message_nodes["m"]["delivered"]
        assert net.input_weight(delivered, "tl_R") == 1

    def test_receiverless_message_drains_at_join(self):
        spec = (
            SpecBuilder("sink")
            .task("S", computation=1, deadline=10, period=10)
            .build()
        )
        from repro.spec import Message

        spec.add_message(Message("m", sender="S", communication=1))
        spec.task("S").precedes_msgs.append("m")
        model = compose(spec)
        delivered = model.message_nodes["m"]["delivered"]
        assert model.net.input_weight(delivered, "tend") == 1


class TestComposer:
    def test_mine_pump_sizes(self, mine_pump_model):
        assert mine_pump_model.total_instances == 782
        assert mine_pump_model.schedule_period == 30000
        assert mine_pump_model.minimum_firings() == 3130

    def test_expanded_minimum_larger(self, expanded_options):
        model = compose(mine_pump(), expanded_options)
        assert model.minimum_firings() == 4694  # 6·782 + 2

    def test_final_marking_complete(self, mine_pump_model):
        net = mine_pump_model.net
        final = net.final_marking
        assert final["pend"] == 1
        assert final["pproc_proc0"] == 1
        # every place is pinned (exact final marking)
        assert len(final) == len(net.places)

    def test_exclusion_place_in_final_marking(self, fig4_model):
        assert fig4_model.net.final_marking["pexcl_T0_T2"] == 1

    def test_priorities_follow_dm_ranks(self, mine_pump_model):
        net = mine_pump_model.net
        # PMC has the tightest deadline: best (lowest) grant priority
        grants = {
            t.task: t.priority
            for t in net.transitions
            if t.role == "grant"
        }
        assert grants["PMC"] == min(grants.values())
        assert grants["RLWH"] == max(grants.values())

    def test_task_ranks_policies(self):
        spec = mine_pump()
        dm = task_ranks(spec, "dm")
        assert dm["PMC"] == 0
        rm = task_ranks(spec, "rm")
        assert rm["PMC"] == 0  # also the shortest period
        lex = task_ranks(spec, "lex")
        assert lex["PMC"] == 0 and lex["SDL"] == 9
        none = task_ranks(spec, "none")
        assert set(none.values()) == {0}

    def test_unknown_policy_rejected(self):
        with pytest.raises(NetConstructionError):
            ComposerOptions(priority_policy="chaotic")

    def test_style_accepts_string(self):
        options = ComposerOptions(style="expanded")
        assert options.style is BlockStyle.EXPANDED

    def test_multiprocessor_composition(self):
        spec = (
            SpecBuilder("mp")
            .processor("cpu0")
            .processor("cpu1")
            .task("A", computation=4, deadline=10, period=10,
                  processor="cpu0")
            .task("B", computation=4, deadline=10, period=10,
                  processor="cpu1")
            .build()
        )
        model = compose(spec)
        net = model.net
        assert net.has_place("pproc_cpu0")
        assert net.has_place("pproc_cpu1")
        assert net.input_weight("pproc_cpu0", "tg_A") == 1
        assert net.input_weight("pproc_cpu1", "tg_B") == 1

    def test_invalid_spec_rejected(self):
        spec = (
            SpecBuilder("bad")
            .task("A", computation=9, deadline=5, period=10)
            .build(validate=False)
        )
        with pytest.raises(Exception):
            compose(spec)

    def test_fig3_fig4_have_extra_task_for_ps500(self):
        assert compose(fig3_precedence()).schedule_period == 500
        assert compose(fig4_exclusion()).schedule_period == 500


class TestOperators:
    def test_rename(self, simple_net):
        from repro.blocks import rename

        renamed = rename(simple_net, {"p0": "start"})
        assert renamed.has_place("start")
        assert not renamed.has_place("p0")
        assert renamed.input_weight("start", "t_start") == 1
        assert renamed.final_marking.get("done") == 1

    def test_rename_with_function(self, simple_net):
        from repro.blocks import rename

        renamed = rename(simple_net, lambda n: f"x_{n}")
        assert renamed.has_place("x_p0")
        assert renamed.has_transition("x_t_start")

    def test_merge_places(self):
        from repro.blocks import merge_places
        from repro.tpn import TimePetriNet

        net = TimePetriNet("m")
        net.add_place("r1", marking=1)
        net.add_place("r2", marking=1)
        net.add_place("out")
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("r1", "t1")
        net.add_arc("r2", "t2")
        net.add_arc("t1", "out")
        net.add_arc("t2", "out")
        merged = merge_places(net, [["r1", "r2"]])
        assert not merged.has_place("r2")
        assert merged.place("r1").marking == 1  # max, not sum
        assert merged.input_weight("r1", "t1") == 1
        assert merged.input_weight("r1", "t2") == 1

    def test_merge_unknown_place_rejected(self, simple_net):
        from repro.blocks import merge_places

        with pytest.raises(NetConstructionError):
            merge_places(simple_net, [["p0", "ghost"]])
