"""Tests for the building-block library (paper Figs. 1–2)."""

import pytest

from repro.blocks import (
    BlockStyle,
    add_fork_block,
    add_join_block,
    add_processor_block,
    add_task_blocks,
    firings_per_instance,
    minimum_schedule_firings,
    sanitize,
)
from repro.errors import NetConstructionError
from repro.spec import SchedulingType, Task
from repro.tpn import TimeInterval, TimePetriNet


def make_task(**overrides) -> Task:
    params = dict(
        name="X", computation=3, deadline=10, period=20, release=1,
        phase=2,
    )
    params.update(overrides)
    return Task(**params)


@pytest.fixture
def net_with_proc():
    net = TimePetriNet("blocks")
    proc = add_processor_block(net, "proc0")
    return net, proc


class TestProcessorBlock:
    def test_single_token(self, net_with_proc):
        net, proc = net_with_proc
        assert net.place(proc).marking == 1

    def test_idempotent(self):
        net = TimePetriNet("n")
        first = add_processor_block(net, "proc0")
        second = add_processor_block(net, "proc0")
        assert first == second
        assert len(net.places) == 1


class TestArrivalBlock:
    """Fig. 1(c): phase transition + periodic budget conversion."""

    def test_phase_interval(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 3, proc)
        assert net.transition("tph_X").interval == TimeInterval.point(2)

    def test_period_interval(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 3, proc)
        assert net.transition("ta_X").interval == TimeInterval.point(20)

    def test_budget_weight_is_n_minus_1(self, net_with_proc):
        """The figure's a_i arc weight: remaining instances."""
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 5, proc)
        assert net.output_weight("tph_X", "pwa_X") == 4

    def test_single_instance_has_no_budget(self, net_with_proc):
        net, proc = net_with_proc
        nodes = add_task_blocks(net, make_task(), 1, proc)
        assert nodes.wait_arrival is None
        assert nodes.arrival_t is None
        assert not net.has_place("pwa_X")

    def test_arrival_marks_release_and_deadline(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 3, proc)
        for t in ("tph_X", "ta_X"):
            assert net.output_weight(t, "pwr_X") == 1
            assert net.output_weight(t, "pwd_X") == 1

    def test_zero_instances_rejected(self, net_with_proc):
        net, proc = net_with_proc
        with pytest.raises(NetConstructionError):
            add_task_blocks(net, make_task(), 0, proc)


class TestDeadlineBlock:
    """Fig. 1(d): t_d [d, d] marks the undesirable p_dm place."""

    def test_deadline_interval(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(deadline=10), 2, proc)
        assert net.transition("td_X").interval == TimeInterval.point(10)

    def test_miss_place_role(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 2, proc)
        assert net.place("pdm_X").role == "deadline-miss"

    def test_compact_finisher_cancels_timer(self, net_with_proc):
        net, proc = net_with_proc
        nodes = add_task_blocks(net, make_task(), 2, proc)
        # compact NP: the computation consumes the deadline token
        assert net.input_weight("pwd_X", nodes.finisher) == 1

    def test_expanded_cancel_chain(self, net_with_proc):
        net, proc = net_with_proc
        nodes = add_task_blocks(
            net, make_task(), 2, proc, style=BlockStyle.EXPANDED
        )
        assert nodes.cancel_t == "tpc_X"
        assert net.input_weight("pwd_X", "tpc_X") == 1
        assert net.input_weight("pwpc_X", "tpc_X") == 1
        assert net.output_weight("tf_X", "pwpc_X") == 1


class TestNonPreemptiveStructure:
    """Fig. 2(a): t_r [r, d−c], t_g [0,0], t_c [c, c]."""

    def test_release_window(self, net_with_proc):
        net, proc = net_with_proc
        add_task_blocks(
            net, make_task(release=1, deadline=10, computation=3),
            2, proc,
        )
        assert net.transition("tr_X").interval == TimeInterval(1, 7)

    def test_grant_is_immediate_and_takes_processor(
        self, net_with_proc
    ):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(), 2, proc)
        grant = net.transition("tg_X")
        assert grant.interval.is_immediate
        assert net.input_weight(proc, "tg_X") == 1

    def test_computation_interval_and_processor_return(
        self, net_with_proc
    ):
        net, proc = net_with_proc
        add_task_blocks(net, make_task(computation=3), 2, proc)
        assert net.transition("tc_X").interval == TimeInterval.point(3)
        assert net.output_weight("tc_X", proc) == 1

    def test_compact_has_no_finish_transition(self, net_with_proc):
        net, proc = net_with_proc
        nodes = add_task_blocks(net, make_task(), 2, proc)
        assert nodes.finish_t is None
        assert nodes.finisher == "tc_X"

    def test_expanded_has_finish_transition(self, net_with_proc):
        net, proc = net_with_proc
        nodes = add_task_blocks(
            net, make_task(), 2, proc, style=BlockStyle.EXPANDED
        )
        assert nodes.finish_t == "tf_X"
        assert net.output_weight("tf_X", "pf_X") == 1


class TestPreemptiveStructure:
    """Fig. 2(b): unit subtasks with weight-c arcs."""

    def _preemptive(self, net, proc, computation=4):
        task = make_task(
            computation=computation,
            scheduling=SchedulingType.PREEMPTIVE,
        )
        return add_task_blocks(net, task, 2, proc)

    def test_unit_computation(self, net_with_proc):
        net, proc = net_with_proc
        self._preemptive(net, proc)
        assert net.transition("tc_X").interval == TimeInterval.point(1)

    def test_weight_c_release_arc(self, net_with_proc):
        """The figure's weight-c arc from release into the grant pool."""
        net, proc = net_with_proc
        self._preemptive(net, proc, computation=4)
        assert net.output_weight("tr_X", "pwg_X") == 4

    def test_weight_c_finish_arc(self, net_with_proc):
        net, proc = net_with_proc
        nodes = self._preemptive(net, proc, computation=4)
        assert nodes.finish_t == "tf_X"
        assert net.input_weight("pwf_X", "tf_X") == 4

    def test_each_unit_cycles_processor(self, net_with_proc):
        net, proc = net_with_proc
        self._preemptive(net, proc)
        assert net.input_weight(proc, "tg_X") == 1
        assert net.output_weight("tc_X", proc) == 1


class TestForkJoin:
    def test_fork(self):
        net = TimePetriNet("f")
        net.add_place("pst_A")
        net.add_place("pst_B")
        add_fork_block(net, ["pst_A", "pst_B"])
        assert net.place("pstart").marking == 1
        assert net.transition("tstart").interval.is_immediate
        assert net.output_weight("tstart", "pst_A") == 1
        assert net.output_weight("tstart", "pst_B") == 1

    def test_join_weights_are_instance_counts(self):
        net = TimePetriNet("j")
        net.add_place("pf_A")
        net.add_place("pf_B")
        end = add_join_block(net, {"pf_A": 3, "pf_B": 1})
        assert end == "pend"
        assert net.input_weight("pf_A", "tend") == 3
        assert net.input_weight("pf_B", "tend") == 1


class TestFiringCounts:
    def test_compact_np_is_four(self):
        assert (
            firings_per_instance(make_task(), BlockStyle.COMPACT) == 4
        )

    def test_expanded_np_is_six(self):
        assert (
            firings_per_instance(make_task(), BlockStyle.EXPANDED) == 6
        )

    def test_preemptive_compact(self):
        task = make_task(
            computation=5, scheduling=SchedulingType.PREEMPTIVE
        )
        # arrival + release + 5*(grant+compute) + finish = 13
        assert firings_per_instance(task, BlockStyle.COMPACT) == 13

    def test_minimum_schedule_firings_matches_paper(self):
        from repro.spec import mine_pump, schedule_period
        from repro.spec.timing import instance_count

        spec = mine_pump()
        period = schedule_period(spec)
        pairs = [
            (t, instance_count(t, period)) for t in spec.tasks
        ]
        assert minimum_schedule_firings(pairs) == 3130


class TestSanitize:
    def test_passthrough(self):
        assert sanitize("Task_1") == "Task_1"

    def test_replaces_special(self):
        assert sanitize("my task!") == "my_task_"

    def test_empty_rejected(self):
        with pytest.raises(NetConstructionError):
            sanitize("")
