"""Tests for DOT export and the name-addressed marking view."""

import pytest

from repro.errors import NetConstructionError
from repro.tpn import (
    MarkingView,
    TimeInterval,
    TimePetriNet,
    explore,
    net_to_dot,
    reachability_to_dot,
)


class TestMarkingView:
    def test_name_access(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        assert view["p0"] == 1
        assert view["done"] == 0

    def test_mapping_protocol(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        assert len(view) == 4
        assert set(view) == set(compiled.place_names)
        assert dict(view)["proc"] == 1

    def test_marked_and_totals(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        assert view.marked() == ("p0", "proc")
        assert view.total_tokens() == 2

    def test_as_dict_sparse_and_dense(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        assert view.as_dict() == {"p0": 1, "proc": 1}
        dense = view.as_dict(sparse=False)
        assert dense["p1"] == 0 and len(dense) == 4

    def test_from_dict(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView.from_dict(compiled, {"done": 2})
        assert view.vector == (0, 0, 0, 2)

    def test_from_dict_unknown_place(self, simple_net):
        compiled = simple_net.compile()
        with pytest.raises(NetConstructionError):
            MarkingView.from_dict(compiled, {"ghost": 1})

    def test_from_dict_negative(self, simple_net):
        compiled = simple_net.compile()
        with pytest.raises(NetConstructionError):
            MarkingView.from_dict(compiled, {"done": -1})

    def test_wrong_length_rejected(self, simple_net):
        compiled = simple_net.compile()
        with pytest.raises(NetConstructionError):
            MarkingView(compiled, (1, 2))

    def test_unknown_lookup(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        with pytest.raises(NetConstructionError):
            view["ghost"]

    def test_repr_sparse(self, simple_net):
        compiled = simple_net.compile()
        view = MarkingView(compiled, compiled.m0)
        assert "p0=1" in repr(view)


class TestNetToDot:
    def test_structure(self, simple_net):
        dot = net_to_dot(simple_net)
        assert dot.startswith('digraph "simple"')
        assert '"p0" [shape=circle' in dot
        assert '"t_start" [shape=box' in dot
        assert '"p0" -> "t_start"' in dot
        assert dot.rstrip().endswith("}")

    def test_interval_in_label(self, simple_net):
        dot = net_to_dot(simple_net)
        assert "[2, 4]" in dot

    def test_weights_labelled(self):
        net = TimePetriNet("w")
        net.add_place("p", marking=5)
        net.add_transition("t", TimeInterval(1, 1))
        net.add_arc("p", "t", 3)
        dot = net_to_dot(net)
        assert '[label="3"]' in dot

    def test_miss_places_highlighted(self, fig8_model):
        dot = net_to_dot(fig8_model.net)
        assert "fillcolor" in dot

    def test_priority_shown(self, fig8_model):
        dot = net_to_dot(fig8_model.net)
        assert "π=" in dot

    def test_escaping(self):
        net = TimePetriNet('has"quote')
        net.add_place("p", marking=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        dot = net_to_dot(net)
        assert '\\"' in dot


class TestReachabilityToDot:
    def test_basic(self, simple_net):
        compiled = simple_net.compile()
        graph = explore(compiled, earliest_only=False)
        dot = reachability_to_dot(compiled, graph)
        assert "s0" in dot and "s1" in dot
        assert "t_start,2" in dot

    def test_final_states_double_circled(self, simple_net):
        compiled = simple_net.compile()
        graph = explore(compiled, earliest_only=False)
        dot = reachability_to_dot(compiled, graph)
        assert "peripheries=2" in dot

    def test_truncation_note(self, mine_pump_model):
        compiled = mine_pump_model.net.compile()
        graph = explore(compiled, max_states=30, earliest_only=True)
        dot = reachability_to_dot(compiled, graph, max_states=10)
        assert "more states" in dot
