"""Tests for the pre-runtime depth-first scheduler."""

import pytest

from repro.blocks import compose
from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.scheduler import (
    SchedulerConfig,
    find_schedule,
    require_schedule,
    search,
)
from repro.spec import SpecBuilder
from repro.tpn import TLTS, TimeInterval, TimePetriNet


class TestConfig:
    def test_defaults(self):
        config = SchedulerConfig()
        assert config.priority_mode == "ordered"
        assert config.delay_mode == "earliest"
        assert config.partial_order

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(priority_mode="fifo"),
            dict(delay_mode="random"),
            dict(reset_policy="nope"),
            dict(max_states=0),
            dict(max_seconds=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(SchedulingError):
            SchedulerConfig(**kwargs)


class TestSearchOnRawNets:
    def test_simple_net(self, simple_net):
        result = search(simple_net.compile())
        assert result.feasible
        assert [f[0] for f in result.firing_schedule] == [
            "t_start",
            "t_end",
        ]
        assert result.makespan == 5  # earliest firing: 2 + 3

    def test_schedule_replays_on_tlts(self, simple_net):
        compiled = simple_net.compile()
        result = search(compiled)
        tlts = TLTS(compiled)
        assert tlts.is_feasible_schedule(
            [(name, q) for name, q, _at in result.firing_schedule]
        )

    def test_no_final_marking_rejected(self, conflict_net):
        with pytest.raises(SchedulingError, match="final marking"):
            search(conflict_net.compile())

    def test_infeasible_reports_false(self):
        net = TimePetriNet("stuck")
        net.add_place("p", marking=1)
        net.add_place("goal")
        net.add_place("trap")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "trap")
        net.set_final_marking({"goal": 1, "trap": 0, "p": 0})
        result = search(net.compile())
        assert not result.feasible
        assert not result.exhausted

    def test_already_final_initial_state(self):
        net = TimePetriNet("trivial")
        net.add_place("p", marking=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.set_final_marking({"p": 1})
        result = search(net.compile())
        assert result.feasible
        assert result.schedule_length == 0

    def test_max_states_budget(self, mine_pump_model):
        result = search(
            mine_pump_model.net.compile(),
            SchedulerConfig(max_states=50),
        )
        assert not result.feasible
        assert result.exhausted

    def test_max_seconds_budget(self, mine_pump_model):
        result = search(
            mine_pump_model.net.compile(),
            SchedulerConfig(max_seconds=1e-9),
        )
        assert not result.feasible
        assert result.exhausted


class TestBacktracking:
    def test_greedy_trap_needs_backtracking(self):
        """DM ordering grants the long task first; the deadline miss is
        detected and the search must back out of it."""
        spec = (
            SpecBuilder("trap")
            .task("LONG", computation=25, deadline=500, period=500)
            .task("TIGHT", computation=10, deadline=20, period=80)
            .build()
        )
        model = compose(spec)
        result = find_schedule(model)
        assert result.feasible

    def test_inserted_idle_via_arrival_anchoring(self):
        """The Mok trap needs the processor to idle until t=5 even
        though LONG is ready at 0.  No work-conserving runtime policy
        does this; the DFS finds it in *every* delay mode because the
        firing of SHORT's arrival transition at t=5 is itself a
        candidate interleaving that advances time past LONG's eager
        release."""
        from repro.scheduler import mok_trap
        from repro.scheduler import schedule_from_result

        model = compose(mok_trap())
        for mode in ("earliest", "extremes", "full"):
            result = find_schedule(
                model, SchedulerConfig(delay_mode=mode)
            )
            assert result.feasible, mode
        schedule = schedule_from_result(
            model, find_schedule(model)
        )
        short = schedule.segments_of("SHORT", 1)[0]
        long_segment = schedule.segments_of("LONG", 1)[0]
        assert short.start == 5  # processor idled 0..5
        assert long_segment.start >= short.end

    def test_completion_at_deadline_counts_as_met(self):
        spec = (
            SpecBuilder("exact")
            .task("A", computation=5, deadline=5, period=5)
            .build()
        )
        result = find_schedule(compose(spec))
        assert result.feasible


class TestPartialOrderModes:
    def test_reduction_preserves_feasibility(self, fig8_model):
        with_reduction = find_schedule(
            fig8_model, SchedulerConfig(partial_order=True)
        )
        without = find_schedule(
            fig8_model, SchedulerConfig(partial_order=False)
        )
        assert with_reduction.feasible and without.feasible

    def test_reduction_shrinks_state_count(self, mine_pump_model):
        """On a reduced-scope variant, turning the reduction off must
        not reduce visited states."""
        spec = (
            SpecBuilder("scope")
            .task("A", computation=2, deadline=20, period=20)
            .task("B", computation=3, deadline=20, period=20)
            .task("C", computation=4, deadline=40, period=40)
            .build()
        )
        model = compose(spec)
        on = find_schedule(model, SchedulerConfig(partial_order=True))
        off = find_schedule(
            model, SchedulerConfig(partial_order=False)
        )
        assert on.feasible and off.feasible
        assert (
            on.stats.states_visited <= off.stats.states_visited
        )

    def test_boundary_completion_arrival_interleaving(self):
        """An instance completing exactly when the next arrives: the
        reduction must not eliminate the finish-before-arrival order
        (the deadline clock only resets on that order)."""
        spec = (
            SpecBuilder("boundary")
            .task("A", computation=8, deadline=17, period=17, phase=1,
                  scheduling="P")
            .task("B", computation=6, deadline=9, period=17, phase=4,
                  scheduling="P")
            .build()
        )
        result = find_schedule(compose(spec))
        assert result.feasible

    def test_strict_priority_mode_on_mine_pump_scope(self):
        spec = (
            SpecBuilder("strict")
            .task("A", computation=2, deadline=10, period=20)
            .task("B", computation=3, deadline=20, period=20)
            .build()
        )
        result = find_schedule(
            compose(spec), SchedulerConfig(priority_mode="strict")
        )
        assert result.feasible


class TestRequireSchedule:
    def test_raises_on_infeasible(self):
        spec = (
            SpecBuilder("over")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build()
        )
        with pytest.raises(InfeasibleScheduleError):
            require_schedule(compose(spec))

    def test_returns_result_on_success(self, two_task_spec):
        result = require_schedule(compose(two_task_spec))
        assert result.feasible


class TestStats:
    def test_summary_mentions_key_numbers(self, two_task_spec):
        result = find_schedule(compose(two_task_spec))
        text = result.summary()
        assert "states visited" in text
        assert "feasible" in text

    def test_stats_dict(self, two_task_spec):
        result = find_schedule(compose(two_task_spec))
        stats = result.stats.as_dict()
        assert stats["states_visited"] >= stats["backtracks"]
        assert stats["elapsed_seconds"] >= 0

    def test_minimum_firings_attached(self, two_task_spec):
        model = compose(two_task_spec)
        result = find_schedule(model)
        assert result.minimum_firings == model.minimum_firings()
        assert result.schedule_length >= result.minimum_firings or (
            result.schedule_length == result.minimum_firings
        )

    def test_backtrack_free_path_hits_minimum(self, two_task_spec):
        model = compose(two_task_spec)
        result = find_schedule(model)
        if result.stats.backtracks == 0:
            assert result.schedule_length == model.minimum_firings()


class TestDeterminism:
    def test_same_config_same_schedule(self, fig8_model):
        first = find_schedule(fig8_model)
        second = find_schedule(fig8_model)
        assert first.firing_schedule == second.firing_schedule

    def test_reset_policies_agree_on_feasibility(self, fig8_model):
        paper = find_schedule(
            fig8_model, SchedulerConfig(reset_policy="paper")
        )
        intermediate = find_schedule(
            fig8_model, SchedulerConfig(reset_policy="intermediate")
        )
        assert paper.feasible and intermediate.feasible
