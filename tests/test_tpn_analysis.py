"""Tests for structural analysis: invariants, conservation, classes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpn import (
    TimeInterval,
    TimePetriNet,
    behavioural_report,
    check_invariants_on_graph,
    classify,
    explore,
    incidence_matrix,
    invariant_value,
    is_conservative,
    place_invariants,
    transition_invariants,
)


class TestIncidence:
    def test_matrix(self, simple_net):
        matrix = incidence_matrix(simple_net)
        names = simple_net.place_names
        t = simple_net.transition_names.index("t_start")
        assert matrix[names.index("p0")][t] == -1
        assert matrix[names.index("p1")][t] == 1
        assert matrix[names.index("done")][t] == 0

    def test_self_loop_cancels(self):
        net = TimePetriNet("loop")
        net.add_place("p", marking=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        assert incidence_matrix(net) == [[0]]


class TestPlaceInvariants:
    def test_resource_invariant(self, simple_net):
        invariants = place_invariants(simple_net)
        # proc + p1 is constant (the resource cycles through p1)
        assert any(
            inv == {"proc": 1, "p1": 1} for inv in invariants
        ) or any(
            set(inv) == {"proc", "p1"} for inv in invariants
        )

    def test_invariant_values_constant(self, simple_net):
        compiled = simple_net.compile()
        graph = explore(compiled, earliest_only=False)
        assert check_invariants_on_graph(simple_net, graph) == []

    def test_invariant_value_helper(self):
        assert invariant_value({"a": 2, "b": -1}, {"a": 3}) == 6
        assert invariant_value({"a": 1}, {}) == 0

    def test_composed_model_invariants_hold(self, fig3_model):
        graph = explore(
            fig3_model.net.compile(), max_states=400, earliest_only=True
        )
        assert check_invariants_on_graph(fig3_model.net, graph) == []

    def test_processor_invariant_in_composed_net(self, fig8_model):
        invariants = place_invariants(fig8_model.net)
        proc_invariants = [
            inv for inv in invariants if "pproc_proc0" in inv
        ]
        assert proc_invariants  # the processor is conserved somewhere


class TestTransitionInvariants:
    def test_cycle_is_t_invariant(self):
        net = TimePetriNet("cycle")
        net.add_place("a", marking=1)
        net.add_place("b")
        net.add_transition("ab")
        net.add_transition("ba")
        net.add_arc("a", "ab")
        net.add_arc("ab", "b")
        net.add_arc("b", "ba")
        net.add_arc("ba", "a")
        invariants = transition_invariants(net)
        assert any(
            inv.get("ab") == inv.get("ba") and inv.get("ab")
            for inv in invariants
        )

    def test_acyclic_net_has_no_t_invariant(self, simple_net):
        assert transition_invariants(simple_net) == []


class TestConservation:
    def test_conservative_net(self):
        net = TimePetriNet("cons")
        net.add_place("a", marking=1)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        assert is_conservative(net)

    def test_non_conservative(self):
        net = TimePetriNet("grow")
        net.add_place("a", marking=1)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t")
        net.add_arc("t", "b", 2)
        assert not is_conservative(net)


class TestClassification:
    def test_state_machine(self):
        net = TimePetriNet("sm")
        net.add_place("a", marking=1)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        flags = classify(net)
        assert flags["state_machine"]
        assert flags["ordinary"]
        assert flags["free_choice"]

    def test_not_state_machine_with_sync(self, simple_net):
        flags = classify(simple_net)
        assert not flags["state_machine"]  # t_start has 2 inputs

    def test_marked_graph(self):
        net = TimePetriNet("mg")
        net.add_place("a", marking=1)
        net.add_place("b")
        net.add_transition("t")
        net.add_transition("u")
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        net.add_arc("b", "u")
        net.add_arc("u", "a")
        assert classify(net)["marked_graph"]

    def test_non_free_choice(self):
        net = TimePetriNet("nfc")
        net.add_place("shared", marking=1)
        net.add_place("extra", marking=1)
        net.add_place("out")
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("shared", "t1")
        net.add_arc("shared", "t2")
        net.add_arc("extra", "t2")
        net.add_arc("t1", "out")
        net.add_arc("t2", "out")
        assert not classify(net)["free_choice"]

    def test_weighted_not_ordinary(self):
        net = TimePetriNet("weighted")
        net.add_place("a", marking=2)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t", 2)
        net.add_arc("t", "b")
        assert not classify(net)["ordinary"]


class TestBehaviouralReport:
    def test_simple_report(self, simple_net):
        report = behavioural_report(simple_net.compile())
        assert report.complete
        assert report.bounded
        assert report.bound == 1
        assert report.deadlock_states == 1
        assert report.final_marking_reachable is True
        assert "k-bounded" in str(report)

    def test_unreachable_final(self):
        net = TimePetriNet("stuck")
        net.add_place("p", marking=1)
        net.add_place("goal")
        net.add_place("trap")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "trap")
        net.set_final_marking({"goal": 1})
        report = behavioural_report(net.compile())
        assert report.final_marking_reachable is False


@st.composite
def random_nets(draw):
    """Small random connected nets for invariant cross-validation."""
    n_places = draw(st.integers(min_value=2, max_value=5))
    n_transitions = draw(st.integers(min_value=1, max_value=4))
    net = TimePetriNet("random")
    for i in range(n_places):
        net.add_place(f"p{i}", marking=draw(st.integers(0, 2)))
    for j in range(n_transitions):
        eft = draw(st.integers(0, 3))
        net.add_transition(
            f"t{j}", TimeInterval(eft, eft + draw(st.integers(0, 3)))
        )
        inputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        outputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        for p in inputs:
            net.add_arc(f"p{p}", f"t{j}", draw(st.integers(1, 2)))
        for p in outputs:
            net.add_arc(f"t{j}", f"p{p}", draw(st.integers(1, 2)))
    return net


class TestInvariantProperties:
    @given(random_nets())
    @settings(max_examples=40, deadline=None)
    def test_invariants_constant_over_reachable_states(self, net):
        """P-invariants from linear algebra must be constant along any
        behaviour generated by the firing rule — cross-validates the
        two independently implemented pieces."""
        graph = explore(net.compile(), max_states=80)
        assert check_invariants_on_graph(net, graph) == []

    @given(random_nets())
    @settings(max_examples=40, deadline=None)
    def test_markings_stay_non_negative(self, net):
        graph = explore(net.compile(), max_states=80)
        for state in graph.states:
            assert all(tokens >= 0 for tokens in state.marking)
