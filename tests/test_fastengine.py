"""Equivalence suite: incremental engine vs reference semantics.

The incremental O(degree) engine (:mod:`repro.tpn.fastengine`) must be
observationally identical to the checked reference
:class:`~repro.tpn.state.StateEngine` — same successors, same fireable
sets and firing domains, same visited-state counts and feasibility
verdicts — across both clock-reset policies and all three delay modes.
These tests enforce that contract on randomized nets and task sets, and
additionally check the internal derived views (enabled set, immediate
set, epoch-shifted timer queues) against their from-scratch definitions
at every reached state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import compose
from repro.scheduler import SchedulerConfig, PreRuntimeScheduler
from repro.spec import paper_examples
from repro.tpn import (
    DISABLED,
    INF,
    IncrementalEngine,
    StateEngine,
    TimeInterval,
    TimePetriNet,
)
from repro.workloads import random_task_set


@st.composite
def bounded_nets(draw):
    """Random small nets whose transitions always consume something."""
    n_places = draw(st.integers(min_value=2, max_value=5))
    n_transitions = draw(st.integers(min_value=1, max_value=5))
    net = TimePetriNet("eq")
    for i in range(n_places):
        net.add_place(f"p{i}", marking=draw(st.integers(0, 2)))
    for j in range(n_transitions):
        eft = draw(st.integers(0, 3))
        lft = eft + draw(st.integers(0, 3))
        net.add_transition(
            f"t{j}",
            TimeInterval(eft, lft),
            priority=draw(st.integers(0, 2)),
        )
        inputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        outputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        for p in inputs:
            net.add_arc(f"p{p}", f"t{j}", draw(st.integers(1, 2)))
        for p in outputs:
            net.add_arc(f"t{j}", f"p{p}", draw(st.integers(1, 2)))
    return net


def _walk_states(compiled, reset_policy, max_states=80):
    """BFS over the discrete TLTS using the *reference* engine only."""
    engine = StateEngine(compiled, reset_policy=reset_policy)
    s0 = engine.initial_state()
    frontier = [s0]
    seen = {s0}
    while frontier:
        state = frontier.pop()
        yield state
        for cand in engine.fireable(state, priority_filter=False):
            if cand.dub == INF:
                delays = [cand.dlb]
            else:
                delays = list(cand.delays())[:3]
            for q in delays:
                succ = engine._fire_unchecked(state, cand.transition, q)
                if succ not in seen and len(seen) < max_states:
                    seen.add(succ)
                    frontier.append(succ)


def _assert_views_consistent(fs, compiled):
    """Derived views must equal their from-scratch definitions."""
    enabled = tuple(
        t for t, c in enumerate(fs.clocks) if c != DISABLED
    )
    assert fs.enabled == enabled
    imms = tuple(t for t in enabled if compiled.immediate[t])
    assert fs.imms == imms
    shift = fs.shift
    tlb = sorted(
        (compiled.eft[t] - fs.clocks[t] + shift, t)
        for t in enabled
        if not compiled.immediate[t]
    )
    assert list(fs.tlb) == tlb
    tub = sorted(
        (compiled.lft[t] - fs.clocks[t] + shift, t)
        for t in enabled
        if not compiled.immediate[t] and compiled.lft[t] != INF
    )
    assert list(fs.tub) == tub


class TestEngineEquivalence:
    @given(bounded_nets(), st.sampled_from(["paper", "intermediate"]))
    @settings(max_examples=40, deadline=None)
    def test_successors_and_fireable_agree(self, net, policy):
        """On every reachable state the two engines agree on FT(s),
        the firing domains, and every successor state."""
        compiled = net.compile()
        reference = StateEngine(compiled, reset_policy=policy)
        fast = IncrementalEngine(compiled, reset_policy=policy)
        for state in _walk_states(compiled, policy):
            fs = fast.lift(state)
            _assert_views_consistent(fs, compiled)
            assert fast.min_dub(fs) == reference.min_dub(state)
            ref_cands = reference.fireable(state, priority_filter=False)
            fast_cands = fast.fireable(fs, priority_filter=False)
            assert [
                (c.transition, c.dlb, c.dub) for c in ref_cands
            ] == [(c.transition, c.dlb, c.dub) for c in fast_cands]
            for cand in ref_cands:
                delays = (
                    [cand.dlb]
                    if cand.dub == INF
                    else list(cand.delays())[:3]
                )
                for q in delays:
                    ref_succ = reference._fire_unchecked(
                        state, cand.transition, q
                    )
                    fast_succ = fast.successor(fs, cand.transition, q)
                    assert fast_succ.marking == ref_succ.marking
                    assert fast_succ.clocks == ref_succ.clocks
                    _assert_views_consistent(fast_succ, compiled)

    @given(bounded_nets(), st.sampled_from(["paper", "intermediate"]))
    @settings(max_examples=25, deadline=None)
    def test_chained_successors_keep_views_consistent(
        self, net, policy
    ):
        """Deep random runs: the incrementally maintained views never
        drift from their definitions (surgery vs full rescan)."""
        compiled = net.compile()
        fast = IncrementalEngine(compiled, reset_policy=policy)
        rng = random.Random(17)
        fs = fast.initial()
        for _ in range(40):
            cands = fast.fireable(fs, priority_filter=False)
            if not cands:
                break
            cand = rng.choice(cands)
            if cand.dub == INF:
                q = cand.dlb
            else:
                q = rng.randint(cand.dlb, int(cand.dub))
            fs = fast.successor(fs, cand.transition, q)
            _assert_views_consistent(fs, compiled)

    def test_initial_matches_reference(self, simple_net):
        compiled = simple_net.compile()
        fast = IncrementalEngine(compiled)
        reference = StateEngine(compiled)
        fs = fast.initial()
        s0 = reference.initial_state()
        assert fs.marking == s0.marking
        assert fs.clocks == s0.clocks
        assert fast.lift(s0) == fs
        assert hash(fast.lift(s0)) == hash(fs)


SEARCH_SEEDS = (1, 2, 3, 4, 5, 6)


class TestSchedulerEquivalence:
    """The DFS over the incremental engine is the same search."""

    @pytest.mark.parametrize("seed", SEARCH_SEEDS)
    @pytest.mark.parametrize(
        "reset_policy", ["paper", "intermediate"]
    )
    def test_random_task_sets_all_reset_policies(
        self, seed, reset_policy
    ):
        spec = random_task_set(
            3 + seed % 3,
            total_utilization=0.35 + 0.1 * (seed % 2),
            seed=seed,
            preemptive_fraction=0.5,
            period_grid=(10, 20, 40),
        )
        net = compose(spec).compiled()
        config = SchedulerConfig(
            reset_policy=reset_policy, max_states=30_000
        )
        self._assert_same_search(net, config)

    @pytest.mark.parametrize(
        "delay_mode", ["earliest", "extremes", "full"]
    )
    def test_all_delay_modes(self, delay_mode):
        spec = random_task_set(
            3, total_utilization=0.4, seed=9, period_grid=(8, 16)
        )
        net = compose(spec).compiled()
        config = SchedulerConfig(
            delay_mode=delay_mode, max_states=30_000
        )
        self._assert_same_search(net, config)

    @pytest.mark.parametrize("priority_mode", ["ordered", "strict"])
    @pytest.mark.parametrize("partial_order", [True, False])
    def test_priority_and_reduction_modes(
        self, priority_mode, partial_order
    ):
        spec = random_task_set(
            4, total_utilization=0.45, seed=21, period_grid=(10, 20)
        )
        net = compose(spec).compiled()
        config = SchedulerConfig(
            priority_mode=priority_mode,
            partial_order=partial_order,
            max_states=30_000,
        )
        self._assert_same_search(net, config)

    @pytest.mark.parametrize(
        "example", ["mine-pump", "fig3", "fig4", "fig8"]
    )
    def test_paper_examples(self, example):
        net = compose(paper_examples()[example]).compiled()
        self._assert_same_search(net, SchedulerConfig())

    def test_infeasible_sets_agree(self):
        spec = random_task_set(
            4, total_utilization=0.95, seed=3, period_grid=(5, 10)
        )
        net = compose(spec).compiled()
        config = SchedulerConfig(max_states=20_000)
        self._assert_same_search(net, config)

    @staticmethod
    def _assert_same_search(net, config):
        ref = PreRuntimeScheduler(
            net, config, engine="reference"
        ).search()
        fast = PreRuntimeScheduler(
            net, config, engine="incremental"
        ).search()
        assert fast.feasible == ref.feasible
        assert fast.exhausted == ref.exhausted
        assert fast.firing_schedule == ref.firing_schedule
        ref_stats = {
            k: v
            for k, v in ref.stats.as_dict().items()
            if k not in ("elapsed_seconds", "states_per_second")
        }
        fast_stats = {
            k: v
            for k, v in fast.stats.as_dict().items()
            if k not in ("elapsed_seconds", "states_per_second")
        }
        assert fast_stats == ref_stats


class TestEngineSelection:
    def test_unknown_engine_rejected(self, simple_net):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="unknown engine"):
            PreRuntimeScheduler(
                simple_net.compile(), engine="warp-drive"
            )

    def test_search_helper_threads_engine(self, simple_net):
        from repro.scheduler import search

        compiled = simple_net.compile()
        fast = search(compiled, engine="incremental")
        ref = search(compiled, engine="reference")
        assert fast.firing_schedule == ref.firing_schedule


class TestCompiledNetAdjacency:
    """The compile-time sparse structure is sound and complete."""

    @given(bounded_nets())
    @settings(max_examples=30, deadline=None)
    def test_affected_covers_enabledness_changes(self, net):
        """If firing t can change tk's enabledness, tk ∈ affected[t]."""
        compiled = net.compile()
        for t in range(compiled.num_transitions):
            touched = {p for p, _d in compiled.delta[t]}
            touched |= compiled.pre_places[t]
            for tk in range(compiled.num_transitions):
                if compiled.pre_places[tk] & touched:
                    assert tk in compiled.affected[t]
            assert t in compiled.affected[t]

    def test_immediate_and_miss_masks(self, simple_net):
        compiled = simple_net.compile()
        for t in range(compiled.num_transitions):
            interval = compiled.interval_of(t)
            assert compiled.immediate[t] == (
                interval.eft == 0 and interval.lft == 0
            )
        assert compiled.miss_transitions == frozenset()

    def test_touch_masks_are_sound(self, simple_net):
        """touches_final[t] false ⇒ firing t never flips is_final."""
        compiled = simple_net.compile()
        constrained = {p for p, _r in compiled.final_constraints}
        for t in range(compiled.num_transitions):
            delta_places = {p for p, _d in compiled.delta[t]}
            if not compiled.touches_final[t]:
                assert not (delta_places & constrained)
