"""Tests for labeled runs and the Definition-3.2 feasibility predicate."""

import pytest

from repro.errors import SchedulingError
from repro.tpn import TLTS, TimeInterval, TimePetriNet


@pytest.fixture
def tlts(simple_net):
    return TLTS(simple_net.compile())


class TestReplay:
    def test_legal_run(self, tlts):
        run = tlts.replay([("t_start", 3), ("t_end", 3)])
        assert run.length == 2
        assert run.makespan == 6
        assert run.final_state.marking == (0, 1, 0, 1)

    def test_labels(self, tlts):
        run = tlts.replay([("t_start", 2), ("t_end", 3)])
        assert run.labels(tlts.net) == [
            ("t_start", 2, 2),
            ("t_end", 3, 5),
        ]

    def test_indices_accepted(self, tlts):
        run = tlts.replay([(0, 2), (1, 3)])
        assert run.length == 2

    def test_not_fireable_rejected(self, tlts):
        with pytest.raises(SchedulingError, match="not fireable"):
            tlts.replay([("t_end", 3)])

    def test_delay_outside_domain_rejected(self, tlts):
        with pytest.raises(SchedulingError, match="outside firing"):
            tlts.replay([("t_start", 1)])

    def test_unknown_transition_rejected(self, tlts):
        with pytest.raises(SchedulingError, match="unknown"):
            tlts.replay([("ghost", 0)])

    def test_index_out_of_range_rejected(self, tlts):
        with pytest.raises(SchedulingError, match="out of range"):
            tlts.replay([(7, 0)])

    def test_empty_run(self, tlts):
        run = tlts.replay([])
        assert run.length == 0
        assert run.makespan == 0

    def test_empty_run_final_state_is_s0(self, tlts):
        run = tlts.replay([])
        assert run.final_state == tlts.initial_state()


class TestFeasibility:
    def test_feasible_schedule(self, tlts):
        assert tlts.is_feasible_schedule(
            [("t_start", 2), ("t_end", 3)]
        )

    def test_wrong_final_marking(self, tlts):
        # legal prefix but M_F not reached
        assert not tlts.is_feasible_schedule([("t_start", 2)])

    def test_illegal_run(self, tlts):
        assert not tlts.is_feasible_schedule([("t_start", 99)])

    def test_every_domain_delay_is_feasible(self, tlts):
        for q in (2, 3, 4):
            assert tlts.is_feasible_schedule(
                [("t_start", q), ("t_end", 3)]
            )


class TestSuccessors:
    def test_earliest_only(self, tlts):
        succ = tlts.successors(tlts.initial_state())
        assert len(succ) == 1
        t, q, _state = succ[0]
        assert (tlts.net.transition_names[t], q) == ("t_start", 2)

    def test_full_domain(self, tlts):
        succ = tlts.successors(
            tlts.initial_state(), earliest_only=False
        )
        assert [q for _t, q, _s in succ] == [2, 3, 4]

    def test_conflict_successors(self, conflict_net):
        tlts = TLTS(conflict_net.compile())
        succ = tlts.successors(
            tlts.initial_state(), earliest_only=False
        )
        labels = {
            (tlts.net.transition_names[t], q) for t, q, _s in succ
        }
        # ceiling is DUB(t_b)=3: t_a in [1,3], t_b in [2,3]
        assert labels == {
            ("t_a", 1),
            ("t_a", 2),
            ("t_a", 3),
            ("t_b", 2),
            ("t_b", 3),
        }

    def test_dead_state_has_no_successors(self, tlts):
        run = tlts.replay([("t_start", 2), ("t_end", 3)])
        assert tlts.successors(run.final_state) == []


class TestZenoSafety:
    def test_zero_time_cycle_detected_by_replay(self):
        """A [0,0] self-loop fires forever at the same instant; the
        TLTS itself permits it (each firing is a distinct step), which
        is why the scheduler tags visited states."""
        net = TimePetriNet("zeno")
        net.add_place("p", marking=1)
        net.add_transition("t", TimeInterval.zero())
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        tlts = TLTS(net.compile())
        run = tlts.replay([("t", 0)] * 5)
        assert run.makespan == 0
        assert run.final_state == run.states[0]
