"""Cross-module integration tests: the whole pipeline, many specs.

Every test here runs spec → compose → search → extract → validate →
simulate → verify, the full Fig. 6 tool flow, asserting that each stage
agrees with the others.
"""

import pytest

from repro import (
    BlockStyle,
    ComposerOptions,
    SchedulerConfig,
    compose,
    find_schedule,
    generate_project,
    run_schedule,
    schedule_from_result,
    verify_trace,
)
from repro.analysis import edf_feasible
from repro.scheduler import simulate_runtime, validate_schedule
from repro.spec import SpecBuilder, dumps, loads
from repro.pnml import dumps as pnml_dumps, loads as pnml_loads
from repro.workloads import random_task_set, random_task_set_with_relations


def pipeline(spec, config=None, options=None):
    """Run the full pipeline; returns (model, result, schedule)."""
    model = compose(spec, options)
    result = find_schedule(model, config)
    if not result.feasible:
        return model, result, None
    schedule = schedule_from_result(model, result)
    machine_result = run_schedule(model, schedule)
    assert machine_result.ok
    assert verify_trace(model, machine_result) == []
    return model, result, schedule


class TestRandomSets:
    """Property-style sweep: every schedulable random set must survive
    the full pipeline with a validated, executable schedule."""

    @pytest.mark.parametrize("seed", range(8))
    def test_nonpreemptive_sets(self, seed):
        spec = random_task_set(
            5, total_utilization=0.45, seed=seed
        )
        _model, result, schedule = pipeline(spec)
        if result.feasible:
            assert schedule is not None
        else:
            # low-utilisation NP sets may still be greedily
            # infeasible; the extremes policy must not be *worse*
            retry = find_schedule(
                compose(spec), SchedulerConfig(delay_mode="extremes")
            )
            assert retry.stats.states_visited >= (
                result.stats.states_visited
            ) or retry.feasible or not retry.feasible

    @pytest.mark.parametrize("seed", range(6))
    def test_preemptive_sets(self, seed):
        spec = random_task_set(
            4,
            total_utilization=0.4,
            seed=seed,
            preemptive_fraction=1.0,
        )
        _model, result, schedule = pipeline(spec)
        assert result.feasible, "preemptive low-U sets must schedule"
        assert schedule is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_relational_sets(self, seed):
        spec = random_task_set_with_relations(
            5,
            total_utilization=0.35,
            seed=seed,
            precedence_pairs=1,
            exclusion_pairs=1,
        )
        model, result, schedule = pipeline(spec)
        if result.feasible:
            assert validate_schedule(model, schedule) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_runtime_feasible_implies_demand_ok(self, seed):
        """Cross-check the baseline simulator against the analytical
        EDF demand test on preemptive independent sets."""
        spec = random_task_set(
            4,
            total_utilization=0.5,
            seed=seed,
            preemptive_fraction=1.0,
        )
        demand = edf_feasible(spec)
        outcome = simulate_runtime(spec, "edf")
        if demand.feasible:
            assert outcome.feasible  # exact test is sufficient


class TestBothStyles:
    @pytest.mark.parametrize(
        "style", [BlockStyle.COMPACT, BlockStyle.EXPANDED]
    )
    def test_fig_specs_schedule_in_both_styles(self, style):
        from repro.spec import (
            fig3_precedence,
            fig4_exclusion,
            fig8_preemptive,
        )

        for spec in (
            fig3_precedence(),
            fig4_exclusion(),
            fig8_preemptive(),
        ):
            options = ComposerOptions(style=style)
            model, result, schedule = pipeline(spec, options=options)
            assert result.feasible, (spec.name, style)

    def test_styles_agree_on_task_timeline(self):
        """Compact and expanded nets must produce the same execution
        segments (only internal bookkeeping differs)."""
        from repro.spec import fig3_precedence

        compact_model, _res, compact = pipeline(fig3_precedence())
        expanded_model, _res2, expanded = pipeline(
            fig3_precedence(),
            options=ComposerOptions(style=BlockStyle.EXPANDED),
        )
        assert {
            (s.task, s.instance, s.start, s.end)
            for s in compact.segments
        } == {
            (s.task, s.instance, s.start, s.end)
            for s in expanded.segments
        }


class TestInterchangeAgreement:
    def test_dsl_roundtrip_preserves_schedule(self):
        spec = random_task_set_with_relations(4, 0.35, seed=9)
        direct_model, _r1, direct = pipeline(spec)
        reparsed = loads(dumps(spec))
        rt_model, _r2, roundtripped = pipeline(reparsed)
        assert {
            (s.task, s.start, s.end) for s in direct.segments
        } == {
            (s.task, s.start, s.end) for s in roundtripped.segments
        }

    def test_pnml_roundtrip_preserves_search(self):
        spec = random_task_set(4, 0.4, seed=13)
        model = compose(spec)
        result = find_schedule(model)
        reloaded = pnml_loads(pnml_dumps(model.net))
        from repro.scheduler import search

        result2 = search(reloaded.compile())
        assert result.feasible == result2.feasible
        assert result.firing_schedule == result2.firing_schedule


class TestCodegenIntegration:
    def test_generated_table_matches_machine(self, tmp_path):
        spec = (
            SpecBuilder("integ")
            .task("A", computation=2, deadline=6, period=12,
                  scheduling="P", code="a();")
            .task("B", computation=4, deadline=12, period=12,
                  scheduling="P", code="b();")
            .build()
        )
        model, _result, schedule = pipeline(spec)
        project = generate_project(model, schedule, "hostsim")
        import shutil

        if shutil.which("cc") is None:
            pytest.skip("no host C compiler")
        output = project.compile_and_run(str(tmp_path / "it"))
        dispatches = output.count("dispatch task")
        fresh = sum(1 for i in schedule.items if not i.preempted)
        assert dispatches == fresh


class TestMessagesEndToEnd:
    def test_bus_pipeline(self):
        spec = (
            SpecBuilder("buses")
            .task("S1", computation=1, deadline=10, period=20)
            .task("R1", computation=2, deadline=16, period=20)
            .task("S2", computation=1, deadline=20, period=20)
            .task("R2", computation=2, deadline=20, period=20)
            .message("m1", sender="S1", receiver="R1",
                     communication=3, bus="can0")
            .message("m2", sender="S2", receiver="R2",
                     communication=3, bus="can0")
            .build()
        )
        model, result, schedule = pipeline(spec)
        assert result.feasible
        # the two transfers share one bus: no overlap allowed
        transfers = sorted(
            schedule.bus_segments, key=lambda b: b.start
        )
        assert len(transfers) == 2
        assert transfers[0].end <= transfers[1].start

    def test_message_chain_with_precedence(self):
        spec = (
            SpecBuilder("chain")
            .task("A", computation=1, deadline=20, period=20)
            .task("B", computation=1, deadline=20, period=20)
            .task("C", computation=1, deadline=20, period=20)
            .precedence("A", "B")
            .message("m", sender="B", receiver="C", communication=2)
            .build()
        )
        model, result, schedule = pipeline(spec)
        assert result.feasible
        a = schedule.segments_of("A", 1)[0]
        b = schedule.segments_of("B", 1)[0]
        c = schedule.segments_of("C", 1)[0]
        transfer = schedule.bus_segments[0]
        assert a.end <= b.start
        assert b.end <= transfer.start
        assert transfer.end <= c.start


class TestMultiProcessor:
    def test_parallel_execution_on_two_processors(self):
        """Extension beyond the paper's mono-processor evaluation: two
        processors execute truly in parallel (overlapping segments on
        different resources)."""
        spec = (
            SpecBuilder("dual")
            .processor("cpu0")
            .processor("cpu1")
            .task("A", computation=8, deadline=10, period=10,
                  processor="cpu0")
            .task("B", computation=8, deadline=10, period=10,
                  processor="cpu1")
            .build()
        )
        model = compose(spec)
        result = find_schedule(model)
        assert result.feasible
        schedule = schedule_from_result(model, result)
        a = schedule.segments_of("A", 1)[0]
        b = schedule.segments_of("B", 1)[0]
        assert a.start < b.end and b.start < a.end  # overlap in time

    def test_single_processor_cannot(self):
        spec = (
            SpecBuilder("mono")
            .task("A", computation=8, deadline=10, period=10)
            .task("B", computation=8, deadline=10, period=10)
            .build()
        )
        assert not find_schedule(compose(spec)).feasible
