"""Parallel search: determinism contract, cancellation, plumbing.

The contract under test (see ``docs/scheduling.md``):

* portfolio and work-stealing searches agree with the serial search's
  feasible/infeasible *verdict* on every model, under both clock-reset
  policies — orderings and partitions change which schedule is found
  and how fast, never whether one exists;
* every feasible parallel schedule replays through the checked
  reference engine (the :func:`validate_with_reference` gate runs
  inside ``ParallelScheduler.search``, so feasibility results in these
  tests are already reference-validated);
* a first-win cancellation leaves no orphaned worker processes.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.blocks import compose
from repro.errors import SchedulingError
from repro.scheduler import (
    ParallelScheduler,
    SchedulerConfig,
    SharedVisitedFilter,
    default_portfolio,
    find_schedule,
    parse_policy,
    split_frontier,
    validate_with_reference,
)
from repro.spec import paper_examples
from repro.tpn.fastengine import IncrementalEngine, SubtreeJob
from repro.workloads import random_task_set, time_scaled_task_set


def _no_ezrt_children() -> bool:
    """True when no parallel-search worker process is left alive."""
    return not [
        child
        for child in multiprocessing.active_children()
        if child.name.startswith("ezrt-")
    ]


def _verdict(model, config):
    result = find_schedule(model, config)
    return result


# ----------------------------------------------------------------------
# Policy plumbing
# ----------------------------------------------------------------------
class TestPolicies:
    def test_parse_policy_plain(self):
        assert parse_policy("latest") == ("latest", None)

    def test_parse_policy_seeded(self):
        assert parse_policy("random:7") == ("random", 7)

    def test_parse_policy_rejects_unknown(self):
        with pytest.raises(SchedulingError):
            parse_policy("dfs-of-doom")

    def test_parse_policy_rejects_seed_on_deterministic(self):
        with pytest.raises(SchedulingError):
            parse_policy("latest:3")

    def test_default_portfolio_always_hedges(self):
        for workers in (1, 2, 4, 8):
            policies = default_portfolio(workers)
            assert len(policies) == workers
            assert policies[0] == "earliest"
            # distinct entries: distinct random seeds, no duplicates
            assert len(set(policies)) == workers

    def test_config_validates_policy(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(policy="nope")
        with pytest.raises(SchedulingError):
            SchedulerConfig(portfolio=("earliest", "bogus"))
        with pytest.raises(SchedulingError):
            SchedulerConfig(parallel=-1)
        with pytest.raises(SchedulingError):
            SchedulerConfig(parallel_mode="threads")

    def test_serial_policies_agree_on_verdict(self):
        """Every ordering reaches the same verdict as the default."""
        model = compose(paper_examples()["fig4"])
        baseline = find_schedule(model, SchedulerConfig())
        for policy in ("latest", "min-laxity", "random"):
            result = find_schedule(
                model, SchedulerConfig(policy=policy, policy_seed=3)
            )
            assert result.feasible == baseline.feasible
            if result.feasible:
                validate_with_reference(
                    model.compiled(),
                    result.config,
                    result.firing_schedule,
                )

    def test_random_policy_is_seed_deterministic(self):
        model = compose(paper_examples()["fig8"])
        config = SchedulerConfig(policy="random", policy_seed=11)
        first = find_schedule(model, config)
        second = find_schedule(model, config)
        assert first.firing_schedule == second.firing_schedule
        assert (
            first.stats.states_visited == second.stats.states_visited
        )


# ----------------------------------------------------------------------
# Pickle-cheap CompiledNet handoff
# ----------------------------------------------------------------------
class TestCompiledNetPickle:
    def test_source_dropped_and_engines_work(self):
        model = compose(paper_examples()["fig3"])
        net = model.compiled()
        clone = pickle.loads(pickle.dumps(net))
        assert clone.source is None
        assert clone.transition_names == net.transition_names
        result = find_schedule(model, SchedulerConfig())
        engine = IncrementalEngine(clone)
        state = engine.initial()
        index = clone.transition_index
        for name, delay, _at in result.firing_schedule:
            state = engine.successor(state, index[name], delay)
        assert clone.is_final(state.marking)

    def test_pickle_is_smaller_without_source(self):
        net = compose(paper_examples()["mine-pump"]).compiled()
        lean = len(pickle.dumps(net))
        baseline = len(
            pickle.dumps(
                {
                    slot: getattr(net, slot)
                    for slot in type(net).__slots__
                    if slot != "source"
                }
            )
        )
        full_source = len(pickle.dumps(net.source))
        assert lean <= baseline * 1.1
        assert lean < full_source  # the builder dwarfs the vectors


# ----------------------------------------------------------------------
# Shared visited filter
# ----------------------------------------------------------------------
class TestSharedVisitedFilter:
    def test_add_claims_once(self):
        vf = SharedVisitedFilter(1 << 10)
        assert vf.add(12345)
        assert not vf.add(12345)
        assert vf.add(-98765)  # negative hashes are masked, not lost
        assert not vf.add(-98765)

    def test_zero_hash_is_representable(self):
        vf = SharedVisitedFilter(1 << 10)
        assert vf.add(0)
        assert not vf.add(0)

    def test_saturation_errs_toward_exploring(self):
        vf = SharedVisitedFilter(2)
        outcomes = [vf.add(value) for value in range(1, 64)]
        # never raises, and past saturation it keeps answering "new"
        assert outcomes[-1] is True

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SchedulingError):
            SharedVisitedFilter(1000)

    def test_for_budget_sizing(self):
        assert SharedVisitedFilter.for_budget(1_000).slots >= 2_000
        assert SharedVisitedFilter.for_budget(10**9).slots == 1 << 22


# ----------------------------------------------------------------------
# Frontier split
# ----------------------------------------------------------------------
class TestSplitFrontier:
    def test_jobs_replay_onto_their_roots(self):
        model = compose(paper_examples()["fig4"])
        net = model.compiled()
        split = split_frontier(net, SchedulerConfig(), target_jobs=6)
        assert split.result is None
        assert len(split.jobs) >= 6
        engine = IncrementalEngine(net)
        for job in split.jobs:
            assert isinstance(job, SubtreeJob)
            state = engine.initial()
            now = 0
            for transition, delay, at in job.prefix:
                state = engine.successor(state, transition, delay)
                now += delay
                assert now == at
            assert now == job.now
            assert state.marking == job.marking
            assert state.clocks == job.clocks
            # exported roots are live states, not dead ends
            assert not net.has_missed_deadline(job.marking)

    def test_split_solves_trivial_models_serially(self):
        model = compose(paper_examples()["fig3"])
        net = model.compiled()
        split = split_frontier(
            net, SchedulerConfig(), target_jobs=10_000
        )
        # fig3's space is tiny: the split reaches a verdict on its own
        assert split.result is not None
        assert split.result.feasible

    def test_serial_fallback_is_validated_and_honest(self):
        """A split-solved worksteal run replays the schedule through
        the reference engine and reports that no worker ran."""
        model = compose(paper_examples()["fig3"])
        result = find_schedule(
            model,
            SchedulerConfig(parallel=4, parallel_mode="worksteal"),
        )
        assert result.feasible
        assert result.workers == 1  # solved during the split
        validate_with_reference(
            model.compiled(), result.config, result.firing_schedule
        )

    def test_seen_hashes_cover_the_frontier(self):
        net = compose(paper_examples()["fig8"]).compiled()
        split = split_frontier(net, SchedulerConfig(), target_jobs=4)
        if split.result is not None:
            pytest.skip("model solved during split")
        engine = IncrementalEngine(net)
        seen = set(split.seen_hashes)
        for job in split.jobs:
            root = engine.revive(job.marking, job.clocks)
            assert root._hash in seen


# ----------------------------------------------------------------------
# Verdict parity on the paper models
# ----------------------------------------------------------------------
PAPER_MODELS = ("fig3", "fig4", "fig8", "mine-pump")


class TestPaperModelParity:
    @pytest.mark.parametrize("name", PAPER_MODELS)
    @pytest.mark.parametrize("reset_policy", ("paper", "intermediate"))
    def test_portfolio_matches_serial(self, name, reset_policy):
        model = compose(paper_examples()[name])
        serial = _verdict(
            model, SchedulerConfig(reset_policy=reset_policy)
        )
        parallel = _verdict(
            model,
            SchedulerConfig(reset_policy=reset_policy, parallel=2),
        )
        assert parallel.feasible == serial.feasible
        assert parallel.workers == 2
        assert parallel.winner_policy is not None
        assert _no_ezrt_children()

    @pytest.mark.parametrize("name", PAPER_MODELS)
    @pytest.mark.parametrize("reset_policy", ("paper", "intermediate"))
    def test_worksteal_matches_serial(self, name, reset_policy):
        model = compose(paper_examples()[name])
        serial = _verdict(
            model, SchedulerConfig(reset_policy=reset_policy)
        )
        parallel = _verdict(
            model,
            SchedulerConfig(
                reset_policy=reset_policy,
                parallel=2,
                parallel_mode="worksteal",
            ),
        )
        assert parallel.feasible == serial.feasible
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# Verdict parity on a randomized sweep
# ----------------------------------------------------------------------
def _sweep_specs():
    """Small mixed instances: feasible and infeasible, NP and P."""
    cases = [
        (4, 0.6, 0, 0.0, 1.0),   # feasible, non-preemptive
        (5, 0.85, 7, 1.0, 0.7),  # feasible, heavy backtracking
        (6, 0.95, 3, 0.0, 0.6),  # infeasible, exhausted space
        (4, 0.9, 2, 0.5, 0.7),   # mixed scheduling
    ]
    for n, u, seed, pf, slack in cases:
        yield random_task_set(
            n,
            u,
            seed=seed,
            preemptive_fraction=pf,
            deadline_slack=slack,
        )


class TestRandomizedParity:
    @pytest.mark.parametrize(
        "spec", list(_sweep_specs()), ids=lambda s: s.name
    )
    @pytest.mark.parametrize("reset_policy", ("paper", "intermediate"))
    def test_both_modes_match_serial(self, spec, reset_policy):
        model = compose(spec)
        serial = _verdict(
            model,
            SchedulerConfig(
                reset_policy=reset_policy, max_states=100_000
            ),
        )
        assert not serial.exhausted, "sweep instance must be decidable"
        for mode in ("portfolio", "worksteal"):
            parallel = _verdict(
                model,
                SchedulerConfig(
                    reset_policy=reset_policy,
                    max_states=100_000,
                    parallel=2,
                    parallel_mode=mode,
                ),
            )
            assert parallel.feasible == serial.feasible, mode
            assert not parallel.exhausted, mode
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# Work-stealing re-split
# ----------------------------------------------------------------------
class TestResplit:
    """Mid-search frontier donation (``_Resplitter``).

    The threshold is monkeypatched *before* the fork so every worker
    inherits an aggressive trigger; real runs only re-split once a
    subtree has proven big (``RESPLIT_MIN_VISITED``).
    """

    @staticmethod
    def _hard_infeasible_model():
        # exhaustive (infeasible) space of ~1-2k states: large enough
        # that workers are still searching when the queue runs dry,
        # which is exactly the starvation signal that triggers exports
        return compose(
            random_task_set(
                5, 0.95, seed=7, deadline_slack=0.35
            )
        )

    def test_resplit_fires_and_preserves_verdict(self, monkeypatch):
        import repro.scheduler.parallel as par

        monkeypatch.setattr(par, "RESPLIT_MIN_VISITED", 8)
        model = self._hard_infeasible_model()
        serial = _verdict(
            model, SchedulerConfig(max_states=300_000)
        )
        assert not serial.feasible and not serial.exhausted
        parallel = _verdict(
            model,
            SchedulerConfig(
                max_states=300_000,
                parallel=2,
                parallel_mode="worksteal",
            ),
        )
        counters = (parallel.metrics or {}).get("counters", {})
        assert counters.get("worksteal.resplits", 0) > 0
        assert parallel.feasible == serial.feasible
        assert not parallel.exhausted
        assert _no_ezrt_children()

    def test_resplit_duplication_is_bounded(self, monkeypatch):
        """Donated subtrees are claim-filtered before export, so the
        union of worker searches re-explores at most a handful of
        states (job roots double-counted, lock-free claim races) —
        never a multiple of the serial space."""
        import repro.scheduler.parallel as par

        monkeypatch.setattr(par, "RESPLIT_MIN_VISITED", 8)
        model = self._hard_infeasible_model()
        serial = _verdict(
            model, SchedulerConfig(max_states=300_000)
        )
        parallel = _verdict(
            model,
            SchedulerConfig(
                max_states=300_000,
                parallel=2,
                parallel_mode="worksteal",
            ),
        )
        assert parallel.feasible == serial.feasible
        assert (
            parallel.stats.states_visited
            <= serial.stats.states_visited * 1.25 + 100
        )
        assert _no_ezrt_children()

    def test_resplit_feasible_schedule_still_validates(
        self, monkeypatch
    ):
        """A win reached through a donated job concatenates its prefix
        into a complete schedule (the reference-replay gate inside
        ``ParallelScheduler.search`` would raise otherwise)."""
        import repro.scheduler.parallel as par

        monkeypatch.setattr(par, "RESPLIT_MIN_VISITED", 8)
        spec = random_task_set(
            5, 0.85, seed=7, preemptive_fraction=1.0,
            deadline_slack=0.7,
        )
        model = compose(spec)
        result = find_schedule(
            model,
            SchedulerConfig(parallel=3, parallel_mode="worksteal"),
        )
        assert result.feasible
        assert result.firing_schedule
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# Cancellation and resource hygiene
# ----------------------------------------------------------------------
class TestCancellation:
    def test_first_win_leaves_no_orphans(self):
        """A fast winner cancels slow losers; everyone is reaped."""
        # the hard instance: the default ordering would grind for
        # hundreds of thousands of states, the race wins in a few
        # thousand — so losers are genuinely mid-flight when cancelled
        spec = random_task_set(
            5, 0.85, seed=7, preemptive_fraction=1.0, deadline_slack=0.7
        )
        model = compose(spec)
        for _ in range(2):
            result = find_schedule(
                model, SchedulerConfig(parallel=3)
            )
            assert result.feasible
            assert _no_ezrt_children()

    def test_worksteal_win_leaves_no_orphans(self):
        spec = random_task_set(
            5, 0.85, seed=7, preemptive_fraction=1.0, deadline_slack=0.7
        )
        model = compose(spec)
        result = find_schedule(
            model,
            SchedulerConfig(parallel=3, parallel_mode="worksteal"),
        )
        assert result.feasible
        assert _no_ezrt_children()

    def test_worksteal_cancel_never_claims_exhaustive_proof(self):
        """A budget-cancelled partition must report exhausted=True.

        With unexplored subtrees left behind, ``exhausted=False``
        would falsely claim a complete infeasibility proof.
        """
        spec = time_scaled_task_set(
            random_task_set(
                6, 0.9, seed=21, preemptive_fraction=1.0,
                deadline_slack=0.7,
            ),
            2,
        )
        model = compose(spec)
        result = find_schedule(
            model,
            SchedulerConfig(
                parallel=2,
                parallel_mode="worksteal",
                max_seconds=0.5,
                max_states=10_000_000,
            ),
        )
        assert not result.feasible
        assert result.exhausted
        assert _no_ezrt_children()

    def test_time_budget_is_honoured(self):
        """An undecidable-within-budget race stops near the deadline."""
        spec = time_scaled_task_set(
            random_task_set(
                6, 0.9, seed=21, preemptive_fraction=1.0,
                deadline_slack=0.7,
            ),
            2,
        )
        model = compose(spec)
        import time as _time

        started = _time.monotonic()
        result = find_schedule(
            model,
            SchedulerConfig(
                parallel=2, max_seconds=1.0, max_states=10_000_000
            ),
        )
        elapsed = _time.monotonic() - started
        assert not result.feasible
        assert result.exhausted
        assert elapsed < 15.0
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# Results and statistics
# ----------------------------------------------------------------------
class TestMergedStats:
    def test_portfolio_merges_all_workers(self):
        model = compose(paper_examples()["fig4"])
        serial = find_schedule(model, SchedulerConfig())
        parallel = find_schedule(model, SchedulerConfig(parallel=2))
        # two complete racers explored at least one serial search's
        # worth of states between them
        assert (
            parallel.stats.states_visited
            >= serial.stats.states_visited
        )

    def test_summary_reports_the_race(self):
        model = compose(paper_examples()["fig4"])
        result = find_schedule(model, SchedulerConfig(parallel=2))
        text = result.summary()
        assert "workers" in text
        assert "winning policy" in text

    def test_parallel_scheduler_rejects_serial_config(self):
        net = compose(paper_examples()["fig3"]).compiled()
        with pytest.raises(SchedulingError):
            ParallelScheduler(net, SchedulerConfig(parallel=1))

    def test_worksteal_rejects_reference_engine(self):
        net = compose(paper_examples()["fig3"]).compiled()
        with pytest.raises(SchedulingError):
            ParallelScheduler(
                net,
                SchedulerConfig(parallel=2, parallel_mode="worksteal"),
                engine="reference",
            )

    def test_explicit_portfolio_is_padded_and_truncated(self):
        net = compose(paper_examples()["fig3"]).compiled()
        scheduler = ParallelScheduler(
            net,
            SchedulerConfig(
                parallel=3, portfolio=("latest", "earliest")
            ),
        )
        policies = scheduler.portfolio_policies()
        assert len(policies) == 3
        assert policies[:2] == ("latest", "earliest")

    def test_portfolio_padding_never_duplicates_random_seeds(self):
        net = compose(paper_examples()["fig3"]).compiled()
        scheduler = ParallelScheduler(
            net,
            SchedulerConfig(parallel=4, portfolio=("random:1",)),
        )
        policies = scheduler.portfolio_policies()
        assert len(policies) == 4
        # every raced search must be distinct — a duplicated seed
        # would burn a worker on a byte-identical search
        assert len(set(policies)) == 4
        seeds = [parse_policy(p)[1] for p in policies]
        assert len(set(seeds)) == len(seeds)
        scheduler = ParallelScheduler(
            net,
            SchedulerConfig(
                parallel=2,
                portfolio=("latest", "earliest", "min-laxity"),
            ),
        )
        assert scheduler.portfolio_policies() == (
            "latest",
            "earliest",
        )


class TestBatchCoresBudget:
    def test_pool_width_shrinks_for_intra_job_parallelism(self):
        from repro.batch import BatchEngine

        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=4),
            max_workers=16,
            cores=8,
        )
        assert engine.max_workers == 2  # 8 cores / 4 workers per job
        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=8),
            max_workers=16,
            cores=4,
        )
        assert engine.max_workers == 1  # never starves below one job
        engine = BatchEngine(max_workers=16, cores=4)
        assert engine.max_workers == 4  # serial jobs: budget = pool
        with pytest.raises(ValueError):
            BatchEngine(cores=0)

    def test_parallel_jobs_run_inside_the_pool(self):
        """Intra-job workers nest under pool workers (fork-safe)."""
        from repro.batch import BatchEngine
        from repro.spec import paper_examples as examples

        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=2),
            max_workers=2,
            cores=4,
        )
        result = engine.run(
            [examples()["fig3"], examples()["fig4"]]
        )
        assert result.stats.feasible == 2, [
            outcome.error for outcome in result.outcomes
        ]
        assert _no_ezrt_children()


class TestValidateWithReference:
    def test_accepts_serial_schedules(self):
        model = compose(paper_examples()["fig8"])
        result = find_schedule(model, SchedulerConfig())
        validate_with_reference(
            model.compiled(), result.config, result.firing_schedule
        )

    def test_rejects_corrupted_schedules(self):
        model = compose(paper_examples()["fig8"])
        result = find_schedule(model, SchedulerConfig())
        corrupted = list(result.firing_schedule)[:-1]
        with pytest.raises(SchedulingError):
            validate_with_reference(
                model.compiled(), result.config, corrupted
            )
