"""Tests for the synthetic workload generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.spec import validate_spec
from repro.workloads import (
    PERIOD_GRID,
    random_task_set,
    random_task_set_with_relations,
    uunifast,
)


class TestUUniFast:
    def test_sums_to_target(self):
        rng = random.Random(42)
        utilizations = uunifast(5, 0.7, rng)
        assert sum(utilizations) == pytest.approx(0.7)
        assert len(utilizations) == 5

    def test_all_positive(self):
        rng = random.Random(1)
        for _ in range(20):
            assert all(u >= 0 for u in uunifast(8, 0.9, rng))

    def test_invalid_inputs(self):
        rng = random.Random(0)
        with pytest.raises(SpecificationError):
            uunifast(0, 0.5, rng)
        with pytest.raises(SpecificationError):
            uunifast(3, 0.0, rng)
        with pytest.raises(SpecificationError):
            uunifast(3, 1.5, rng)

    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_sum_and_sign(self, n, total, seed):
        utilizations = uunifast(n, total, random.Random(seed))
        assert sum(utilizations) == pytest.approx(total)
        assert all(u >= 0 for u in utilizations)


class TestRandomTaskSet:
    def test_deterministic_for_seed(self):
        a = random_task_set(5, 0.5, seed=7)
        b = random_task_set(5, 0.5, seed=7)
        assert [(t.name, t.computation, t.deadline, t.period)
                for t in a.tasks] == [
            (t.name, t.computation, t.deadline, t.period)
            for t in b.tasks
        ]

    def test_different_seeds_differ(self):
        a = random_task_set(8, 0.5, seed=1)
        b = random_task_set(8, 0.5, seed=2)
        assert [(t.computation, t.period) for t in a.tasks] != [
            (t.computation, t.period) for t in b.tasks
        ]

    def test_specs_are_valid(self):
        for seed in range(15):
            spec = random_task_set(6, 0.6, seed=seed)
            assert validate_spec(spec) == []

    def test_periods_from_grid(self):
        spec = random_task_set(10, 0.5, seed=3)
        assert all(t.period in PERIOD_GRID for t in spec.tasks)

    def test_preemptive_fraction(self):
        all_p = random_task_set(
            10, 0.5, seed=0, preemptive_fraction=1.0
        )
        assert all(t.is_preemptive for t in all_p.tasks)
        none_p = random_task_set(
            10, 0.5, seed=0, preemptive_fraction=0.0
        )
        assert not any(t.is_preemptive for t in none_p.tasks)

    def test_deadline_slack_tightens(self):
        loose = random_task_set(8, 0.4, seed=5, deadline_slack=1.0)
        tight = random_task_set(8, 0.4, seed=5, deadline_slack=0.3)
        for a, b in zip(loose.tasks, tight.tasks):
            assert b.deadline <= a.deadline

    def test_invalid_parameters(self):
        with pytest.raises(SpecificationError):
            random_task_set(3, 0.5, preemptive_fraction=1.5)
        with pytest.raises(SpecificationError):
            random_task_set(3, 0.5, deadline_slack=0.0)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_always_valid(self, n, seed):
        spec = random_task_set(n, 0.5, seed=seed)
        assert validate_spec(spec) == []
        assert spec.total_utilization() <= 1.0 + n * 0.05


class TestRelationalSets:
    def test_relations_present_and_valid(self):
        spec = random_task_set_with_relations(
            6, 0.4, seed=11, precedence_pairs=2, exclusion_pairs=2
        )
        assert validate_spec(spec) == []
        assert len(spec.precedence_pairs()) == 2
        assert len(spec.exclusion_pairs()) == 2

    def test_precedence_periods_equalised(self):
        spec = random_task_set_with_relations(
            4, 0.4, seed=2, precedence_pairs=1, exclusion_pairs=0
        )
        before, after = spec.precedence_pairs()[0]
        assert spec.task(before).period == spec.task(after).period

    def test_small_set_caps_relations(self):
        spec = random_task_set_with_relations(
            2, 0.3, seed=0, precedence_pairs=5, exclusion_pairs=0
        )
        assert len(spec.precedence_pairs()) <= 1


class TestTimeScaling:
    def test_scales_every_timing_field(self):
        from repro.workloads import time_scaled_task_set

        base = random_task_set(4, 0.5, seed=3, preemptive_fraction=0.5)
        scaled = time_scaled_task_set(base, 3)
        assert validate_spec(scaled) == []
        for original, copy in zip(base.tasks, scaled.tasks):
            assert copy.computation == original.computation * 3
            assert copy.deadline == original.deadline * 3
            assert copy.period == original.period * 3
            assert copy.scheduling == original.scheduling

    def test_preserves_relations_and_structure(self):
        from repro.workloads import time_scaled_task_set

        base = random_task_set_with_relations(
            6, 0.4, seed=11, precedence_pairs=2, exclusion_pairs=2
        )
        scaled = time_scaled_task_set(base, 2)
        assert validate_spec(scaled) == []
        assert scaled.precedence_pairs() == base.precedence_pairs()
        assert sorted(
            tuple(sorted(pair)) for pair in scaled.exclusion_pairs()
        ) == sorted(
            tuple(sorted(pair)) for pair in base.exclusion_pairs()
        )
        assert [p.name for p in scaled.processors] == [
            p.name for p in base.processors
        ]

    def test_rejects_zero_scale(self):
        from repro.workloads import time_scaled_task_set

        with pytest.raises(SpecificationError):
            time_scaled_task_set(random_task_set(3, 0.4), 0)

    def test_hard_portfolio_task_set_is_deterministic(self):
        from repro.workloads import hard_portfolio_task_set

        first = hard_portfolio_task_set()
        second = hard_portfolio_task_set()
        assert validate_spec(first) == []
        assert [
            (t.name, t.computation, t.deadline, t.period)
            for t in first.tasks
        ] == [
            (t.name, t.computation, t.deadline, t.period)
            for t in second.tasks
        ]


class TestWideIntervalFamily:
    def test_structure_and_final_marking(self):
        from repro.workloads import wide_interval_job_net

        net = wide_interval_job_net(n_jobs=3, width=6)
        compiled = net.compile()
        # one release/grant/compute triple per job plus the processor
        assert compiled.num_transitions == 9
        assert compiled.final_constraints
        release = compiled.transition_index["release0"]
        assert compiled.interval_of(release).width == 6

    def test_feasible_and_refutation_variants(self):
        from repro.scheduler import SchedulerConfig
        from repro.scheduler.dfs import search
        from repro.workloads import wide_interval_job_net

        feasible = wide_interval_job_net(feasible=True).compile()
        result = search(feasible, SchedulerConfig())
        assert result.feasible

        refutation = wide_interval_job_net(feasible=False).compile()
        result = search(refutation, SchedulerConfig())
        assert not result.feasible and not result.exhausted

    def test_family_is_width_sweep(self):
        from repro.workloads import wide_interval_family

        members = list(wide_interval_family(widths=(2, 4)))
        assert [label for label, _net in members] == [
            "n3-w2",
            "n3-w4",
        ]

    def test_invalid_parameters(self):
        from repro.workloads import wide_interval_job_net

        with pytest.raises(SpecificationError):
            wide_interval_job_net(n_jobs=0)
        with pytest.raises(SpecificationError):
            wide_interval_job_net(width=-1)
