"""Tests for schedulability analysis, Gantt and reports."""

import pytest

from repro.analysis import (
    breakdown,
    demand_bound,
    edf_feasible,
    full_report,
    liu_layland_bound,
    necessary_feasible,
    passes_hyperbolic,
    passes_liu_layland,
    render_gantt,
    render_instance_table,
    response_time_analysis,
    schedule_report,
    spec_report,
    total_utilization,
)
from repro.blocks import compose
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import SpecBuilder, mine_pump


class TestUtilization:
    def test_mine_pump_total(self):
        assert total_utilization(mine_pump()) == pytest.approx(
            0.30445, abs=1e-4
        )

    def test_liu_layland_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        # n → ∞ limit is ln 2
        assert liu_layland_bound(1000) == pytest.approx(
            0.6934, abs=1e-3
        )

    def test_liu_layland_invalid(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)

    def test_mine_pump_passes_bounds(self):
        spec = mine_pump()
        assert passes_liu_layland(spec)
        assert passes_hyperbolic(spec)
        assert necessary_feasible(spec)

    def test_overloaded_fails_necessary(self):
        spec = (
            SpecBuilder("over")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build()
        )
        assert not necessary_feasible(spec)

    def test_hyperbolic_tighter_than_liu_layland(self):
        # U = 0.85 > LL bound for 2 tasks (0.828) but the product
        # (1.7)(1.15) = 1.955 <= 2 passes the hyperbolic test
        spec = (
            SpecBuilder("edge")
            .task("A", computation=7, deadline=10, period=10)
            .task("B", computation=3, deadline=20, period=20)
            .build()
        )
        assert not passes_liu_layland(spec)
        assert passes_hyperbolic(spec)

    def test_breakdown_keys(self):
        rows = breakdown(mine_pump())
        assert "PMC" in rows and "total" in rows
        assert "liu-layland-bound" in rows


class TestDemand:
    def test_demand_bound_values(self):
        spec = (
            SpecBuilder("d")
            .task("A", computation=2, deadline=5, period=10)
            .build()
        )
        assert demand_bound(spec, 4) == 0
        assert demand_bound(spec, 5) == 2
        assert demand_bound(spec, 15) == 4

    def test_edf_feasible_mine_pump(self):
        check = edf_feasible(mine_pump())
        assert check.feasible
        assert check.checked_points > 0

    def test_edf_infeasible_overload(self):
        spec = (
            SpecBuilder("over")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build()
        )
        check = edf_feasible(spec)
        assert not check.feasible
        assert check.first_overload == 10
        assert "overload" in str(check)


class TestResponseTime:
    def test_exact_two_task(self):
        spec = (
            SpecBuilder("rta")
            .task("HI", computation=2, deadline=5, period=5,
                  scheduling="P")
            .task("LO", computation=4, deadline=10, period=10,
                  scheduling="P")
            .build()
        )
        result = response_time_analysis(spec, "dm")
        assert result.response["HI"] == 2
        # LO: 4 + ceil(R/5)*2 → fixed point at 8
        assert result.response["LO"] == 8
        assert result.schedulable

    def test_blocking_term_for_np(self):
        spec = (
            SpecBuilder("block")
            .task("HI", computation=2, deadline=5, period=10,
                  scheduling="P")
            .task("LO", computation=4, deadline=10, period=10,
                  scheduling="NP")
            .build()
        )
        with_blocking = response_time_analysis(spec, "dm")
        without = response_time_analysis(
            spec, "dm", nonpreemptive_blocking=False
        )
        assert (
            with_blocking.response["HI"]
            == without.response["HI"] + 3
        )

    def test_unschedulable_flagged(self):
        from repro.scheduler import rm_overload_pair

        result = response_time_analysis(rm_overload_pair(), "rm")
        assert not result.schedulable
        assert "T2" in result.unschedulable_tasks
        assert "unschedulable" in str(result)

    def test_unknown_policy(self):
        with pytest.raises(Exception):
            response_time_analysis(mine_pump(), "edf")


class TestGantt:
    @pytest.fixture()
    def bundle(self, two_task_spec):
        model = compose(two_task_spec)
        schedule = schedule_from_result(model, find_schedule(model))
        return model, schedule

    def test_render(self, bundle):
        model, schedule = bundle
        text = render_gantt(model, schedule.segments, 0, 10)
        lines = text.splitlines()
        assert lines[0].startswith("Gantt [0, 10)")
        a_row = next(line for line in lines if line.startswith("A"))
        assert "##" in a_row

    def test_scaling(self, bundle):
        model, schedule = bundle
        text = render_gantt(
            model, schedule.segments, 0, 1000, width=10
        )
        assert "one column = 100" in text

    def test_empty_window_rejected(self, bundle):
        model, schedule = bundle
        with pytest.raises(ValueError):
            render_gantt(model, schedule.segments, 5, 5)

    def test_instance_table(self, bundle):
        model, schedule = bundle
        table = render_instance_table(model, schedule.segments)
        assert "response" in table
        assert "A" in table

    def test_instance_table_limit(self, mine_pump_model):
        schedule = schedule_from_result(
            mine_pump_model, find_schedule(mine_pump_model)
        )
        table = render_instance_table(
            mine_pump_model, schedule.segments, limit=5
        )
        assert "limited to 5" in table


class TestReports:
    def test_full_report_sections(self, two_task_spec):
        model = compose(two_task_spec)
        result = find_schedule(model)
        schedule = schedule_from_result(model, result)
        text = full_report(model, result, schedule, gantt=True)
        assert "== specification ==" in text
        assert "== pre-runtime search ==" in text
        assert "== synthesised schedule ==" in text
        assert "Gantt" in text

    def test_spec_report_facts(self, mine_pump_model):
        text = spec_report(mine_pump_model)
        assert "782" in text
        assert "30000" in text
        assert "0.30" in text

    def test_schedule_report_load(self, two_task_spec):
        model = compose(two_task_spec)
        schedule = schedule_from_result(model, find_schedule(model))
        text = schedule_report(model, schedule)
        assert "processor busy   : 5 (50.0% of PS)" in text
