"""Tests for the runtime-scheduling baseline simulators."""

import pytest

from repro.blocks import compose
from repro.errors import SchedulingError
from repro.scheduler import (
    SchedulerConfig,
    exclusion_blocking_pair,
    find_schedule,
    mok_trap,
    rm_overload_pair,
    simulate_runtime,
)
from repro.spec import SpecBuilder


class TestBasicDispatch:
    def test_single_task(self):
        spec = (
            SpecBuilder("one")
            .task("A", computation=3, deadline=10, period=10)
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        assert outcome.feasible
        assert outcome.segments[0].start == 0
        assert outcome.segments[0].end == 3
        assert outcome.response_times["A"] == 3

    def test_two_instances(self):
        spec = (
            SpecBuilder("two")
            .task("A", computation=2, deadline=5, period=5)
            .build()
        )
        outcome = simulate_runtime(spec, "edf", horizon=10)
        starts = [s.start for s in outcome.segments]
        assert starts == [0, 5]

    def test_default_horizon_is_one_hyperperiod(self):
        spec = (
            SpecBuilder("two")
            .task("A", computation=2, deadline=5, period=5)
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        assert [s.start for s in outcome.segments] == [0]

    def test_release_respected(self):
        spec = (
            SpecBuilder("rel")
            .task("A", computation=2, deadline=10, period=10,
                  release=4)
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        assert outcome.segments[0].start == 4

    def test_phase_respected(self):
        spec = (
            SpecBuilder("ph")
            .task("A", computation=2, deadline=10, period=10, phase=3)
            .build()
        )
        outcome = simulate_runtime(spec, "dm", horizon=13)
        assert outcome.segments[0].start == 3

    def test_unknown_policy(self, two_task_spec):
        with pytest.raises(SchedulingError):
            simulate_runtime(two_task_spec, "lifo")


class TestPreemption:
    def test_edf_preempts(self):
        spec = (
            SpecBuilder("p")
            .task("LONG", computation=6, deadline=20, period=20,
                  scheduling="P")
            .task("SHORT", computation=2, deadline=3, period=20,
                  phase=2, scheduling="P")
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        assert outcome.feasible
        long_segments = [
            s for s in outcome.segments if s.task == "LONG"
        ]
        assert len(long_segments) == 2  # preempted by SHORT

    def test_non_preemptive_runs_to_completion(self):
        spec = (
            SpecBuilder("np")
            .task("LONG", computation=6, deadline=20, period=20,
                  scheduling="NP")
            .task("SHORT", computation=2, deadline=10, period=20,
                  phase=2, scheduling="P")
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        long_segments = [
            s for s in outcome.segments if s.task == "LONG"
        ]
        assert len(long_segments) == 1
        assert long_segments[0].duration == 6


class TestRelationsAtRuntime:
    def test_precedence_respected(self):
        spec = (
            SpecBuilder("prec")
            .task("B", computation=2, deadline=10, period=10)
            .task("A", computation=2, deadline=10, period=10)
            .precedence("A", "B")
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        a_end = next(
            s.end for s in outcome.segments if s.task == "A"
        )
        b_start = next(
            s.start for s in outcome.segments if s.task == "B"
        )
        assert b_start >= a_end

    def test_exclusion_blocks_start(self):
        spec = exclusion_blocking_pair()
        outcome = simulate_runtime(spec, "edf")
        guard = [s for s in outcome.segments if s.task == "GUARD"]
        alarm = [s for s in outcome.segments if s.task == "ALARM"]
        envelope = (guard[0].start, guard[-1].end)
        for seg in alarm:
            assert not (
                seg.start < envelope[1] and seg.end > envelope[0]
            )

    def test_message_delays_receiver(self):
        spec = (
            SpecBuilder("msg")
            .task("S", computation=1, deadline=10, period=10)
            .task("R", computation=2, deadline=10, period=10)
            .message("m", sender="S", receiver="R", communication=3,
                     grant_bus=1)
            .build()
        )
        outcome = simulate_runtime(spec, "edf")
        s_end = next(s.end for s in outcome.segments if s.task == "S")
        r_start = next(
            s.start for s in outcome.segments if s.task == "R"
        )
        assert r_start >= s_end + 4  # grant 1 + communication 3


class TestMissHandling:
    def test_miss_recorded_with_late_completion(self):
        spec = (
            SpecBuilder("late")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build(validate=True)
        )
        outcome = simulate_runtime(spec, "edf", horizon=20)
        assert not outcome.feasible
        completions = [
            m for m in outcome.misses if m.completion is not None
        ]
        assert completions
        assert all(
            m.completion > m.deadline for m in completions
        )

    def test_abort_policy_drops_work(self):
        spec = (
            SpecBuilder("abort")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build()
        )
        outcome = simulate_runtime(
            spec, "edf", horizon=20, miss_policy="abort"
        )
        assert not outcome.feasible

    def test_unknown_miss_policy(self, two_task_spec):
        with pytest.raises(SchedulingError):
            simulate_runtime(two_task_spec, "edf", miss_policy="shrug")


class TestCannedComparisons:
    """The baseline story of DESIGN.md experiment B1."""

    def test_mok_trap_beats_every_runtime_policy(self):
        spec = mok_trap()
        for policy in ("edf", "dm", "rm"):
            assert not simulate_runtime(spec, policy).feasible
        model = compose(spec)
        for mode in ("earliest", "extremes"):
            assert find_schedule(
                model, SchedulerConfig(delay_mode=mode)
            ).feasible

    def test_rm_overload_edf_meets_dm_misses(self):
        spec = rm_overload_pair()
        assert simulate_runtime(spec, "edf").feasible
        assert not simulate_runtime(spec, "dm").feasible
        assert not simulate_runtime(spec, "rm").feasible
        assert find_schedule(compose(spec)).feasible

    def test_exclusion_traps_edf_and_dm(self):
        spec = exclusion_blocking_pair()
        assert not simulate_runtime(spec, "edf").feasible
        assert not simulate_runtime(spec, "dm").feasible
        assert find_schedule(compose(spec)).feasible

    def test_mine_pump_defeats_runtime_edf(self, mine_pump_spec):
        """The headline finding of experiment B1: the paper's own case
        study is runtime-unschedulable!  Work-conserving EDF lets the
        non-preemptive 25-unit CH4H start at t=75, blocking PMC's
        second instance (arrival 80, absolute deadline 100) until 100 —
        a miss.  The pre-runtime search hits the same trap, *backtracks*
        and schedules PDL at 75 instead; that non-greedy decision is
        precisely what priority-driven runtime dispatching cannot make
        (Mok's observation, the paper's reference [10])."""
        outcome = simulate_runtime(mine_pump_spec, "edf")
        assert not outcome.feasible
        miss = outcome.misses[0]
        assert (miss.task, miss.instance) == ("PMC", 2)
        assert miss.deadline == 100

    def test_mine_pump_defeats_dm_and_rm_too(self, mine_pump_spec):
        for policy in ("dm", "rm"):
            assert not simulate_runtime(
                mine_pump_spec, policy
            ).feasible

    def test_preemptive_mine_pump_is_runtime_schedulable(self):
        """Making every task preemptive removes the blocking: EDF then
        meets all deadlines — isolating non-preemptive blocking as the
        cause of the runtime failure."""
        from repro.spec import MINE_PUMP_TABLE1

        builder = SpecBuilder("mine-pump-p").processor("proc0")
        for name, c, d, p in MINE_PUMP_TABLE1:
            builder.task(
                name, computation=c, deadline=d, period=p,
                scheduling="P",
            )
        outcome = simulate_runtime(builder.build(), "edf")
        assert outcome.feasible

    def test_summaries_render(self):
        outcome = simulate_runtime(mok_trap(), "edf")
        text = outcome.summary()
        assert "EDF" in text and "miss" in text
