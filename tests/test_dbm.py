"""The packed DBM core (ISSUE 10): bit-identity and round trips.

Three engines implement the Berthomieu–Diaz firing rule:

* the tuple-of-tuples :class:`repro.tpn.stateclass.StateClassEngine`,
  whose full Floyd–Warshall re-closure (``_canonical``) is the
  executable specification;
* the pure-Python side of :class:`repro.tpn.dbm.DbmEngine` —
  incremental closure repair over flat ``array('q')`` buffers;
* the compiled C core (:mod:`repro.tpn._dbmc`), reached through the
  same :class:`DbmEngine` when built.

This suite walks seeded class graphs and pins all three to the *same
bits*: identical markings, identical canonical matrices, identical
64-bit Zobrist keys, identical firable sets, windows and ordered
candidate lists, under both clock-reset policies.  It also pins the
:meth:`~repro.tpn.dbm.PackedClass.export` /
:meth:`~repro.tpn.dbm.DbmEngine.revive` round trip the work-stealing
path relies on, and the construction-time EZT204 bound-cap refusal.
"""

from __future__ import annotations

import itertools

import pytest

from repro.blocks.composer import compose
from repro.errors import SchedulingError
from repro.spec.examples import fig3_precedence, fig4_exclusion
from repro.tpn.dbm import DINF, MAX_BOUND, DbmEngine, PackedClass
from repro.tpn.interval import INF, TimeInterval
from repro.tpn.net import TimePetriNet
from repro.tpn.stateclass import StateClassEngine, _canonical
from repro.workloads import (
    random_task_set,
    wide_interval_job_net,
)

RESETS = ("paper", "intermediate")


def _nets():
    return {
        "fig3": compose(fig3_precedence()).compiled(),
        "fig4": compose(fig4_exclusion()).compiled(),
        "wide-feasible": wide_interval_job_net(feasible=True).compile(),
        "wide-infeasible": wide_interval_job_net(
            feasible=False
        ).compile(),
        "seeded": compose(
            random_task_set(3, 0.6, seed=11, deadline_slack=0.8)
        ).compiled(),
    }


@pytest.fixture(scope="module")
def nets():
    return _nets()


def _pure_engine(net, reset_policy) -> DbmEngine:
    """A DbmEngine forced onto the pure-Python path."""
    engine = DbmEngine(net, reset_policy=reset_policy)
    engine._core = None
    engine.native = False
    return engine


def _assert_same_class(packed: PackedClass, spec_cls) -> None:
    """Packed class ≡ tuple-engine class, bit for bit."""
    unpacked = packed.unpack()
    assert unpacked.marking == spec_cls.marking
    assert unpacked.enabled == spec_cls.enabled
    assert unpacked.dbm == spec_cls.dbm


def _walk(net, reset_policy, check, limit=600):
    """Drive the three engines in lockstep over the class graph.

    ``check(packed_a, packed_b, spec_cls)`` sees the same class as
    produced by the default engine (native when built), the forced-pure
    engine and the tuple specification engine.
    """
    default = DbmEngine(net, reset_policy=reset_policy)
    pure = _pure_engine(net, reset_policy)
    spec = StateClassEngine(net, reset_policy=reset_policy)
    frontier = [
        (default.initial_class(), pure.initial_class(),
         spec.initial_class())
    ]
    seen = set()
    visited = 0
    while frontier and visited < limit:
        a, b, s = frontier.pop()
        if a in seen:
            continue
        seen.add(a)
        visited += 1
        check(default, pure, spec, a, b, s)
        for t in spec.firable(s):
            sa = default.try_fire(a, t)
            sb = pure.try_fire(b, t)
            ss = spec.try_fire(s, t)
            assert (sa is None) == (ss is None)
            assert (sb is None) == (ss is None)
            if ss is None:
                continue
            if not net.has_missed_deadline(sa.marking):
                frontier.append((sa, sb, ss))
    assert visited > 1, "walk never left the initial class"
    return visited


class TestClosureBitIdentity:
    """Native vs pure vs Floyd–Warshall spec, across both policies."""

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("name", sorted(_nets()))
    def test_successors_match_spec_engine(
        self, nets, name, reset_policy
    ):
        def check(default, pure, spec, a, b, s):
            _assert_same_class(a, s)
            _assert_same_class(b, s)
            assert a == b and hash(a) == hash(b)

        _walk(nets[name], reset_policy, check)

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("name", sorted(_nets()))
    def test_closure_is_a_floyd_warshall_fixpoint(
        self, nets, name, reset_policy
    ):
        """Every packed matrix equals its own full FW re-closure —
        the incremental repair never under- or over-tightens."""

        def check(default, pure, spec, a, b, s):
            matrix = [list(row) for row in a.unpack().dbm]
            closed = _canonical(matrix)
            assert closed is not None
            assert tuple(
                tuple(row) for row in closed
            ) == a.unpack().dbm

        _walk(nets[name], reset_policy, check, limit=150)

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("name", sorted(_nets()))
    def test_firable_and_windows_match(
        self, nets, name, reset_policy
    ):
        def check(default, pure, spec, a, b, s):
            firable = spec.firable(s)
            assert default.firable(a) == firable
            assert pure.firable(b) == firable
            for t in s.enabled:
                window = spec.fire_window(s, t)
                assert default.fire_window(a, t) == window
                assert pure.fire_window(b, t) == window
                if t in firable:
                    assert a.bounds_of(t) == s.bounds_of(t)

        _walk(nets[name], reset_policy, check, limit=200)

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize(
        "strict,partial_order",
        list(itertools.product((False, True), repeat=2)),
    )
    def test_candidates_native_matches_pure(
        self, nets, reset_policy, strict, partial_order
    ):
        """The single-call C candidate path (filters + reduction +
        ordering) is bit-identical to the pure enumeration."""

        def check(default, pure, spec, a, b, s):
            got = default.candidates(a, strict, partial_order)
            want = pure.candidates(b, strict, partial_order)
            assert got == want

        for name in ("fig4", "seeded", "wide-infeasible"):
            _walk(nets[name], reset_policy, check, limit=200)


class TestExportRevive:
    @pytest.mark.parametrize("reset_policy", RESETS)
    def test_round_trip_preserves_identity(self, nets, reset_policy):
        engine = DbmEngine(nets["fig4"], reset_policy=reset_policy)
        cls = engine.initial_class()
        for _ in range(6):
            cands, _reduced = engine.candidates(cls, False, False)
            if not cands:
                break
            marking, dbm = cls.export()
            assert isinstance(marking, bytes)
            assert isinstance(dbm, bytes)
            revived = engine.revive(marking, dbm)
            assert revived == cls
            assert hash(revived) == hash(cls)
            assert revived.enabled == cls.enabled
            assert revived.size == cls.size
            cls = engine.fire(cls, cands[0][0])

    def test_revive_crosses_engine_instances(self, nets):
        """The worker-side engine rebuilds the exporter's class from
        raw bytes alone (the work-stealing handoff contract)."""
        sender = DbmEngine(nets["fig3"])
        receiver = DbmEngine(nets["fig3"])
        cls = sender.initial_class()
        cands, _ = sender.candidates(cls, False, False)
        child = sender.fire(cls, cands[0][0])
        revived = receiver.revive(*child.export())
        assert revived == child and hash(revived) == hash(child)


class TestIncrementalHash:
    @pytest.mark.parametrize("reset_policy", RESETS)
    def test_hash_matches_from_scratch_recomputation(
        self, nets, reset_policy
    ):
        """The XOR-maintained key equals a full Zobrist recompute on
        every reachable class (collision-free bookkeeping).  ``hash()``
        folds the raw key modulo 2**61 - 1 (CPython int hashing), so
        the comparison pins the unfolded ``hash64``."""

        def check(default, pure, spec, a, b, s):
            mhash = default._mark_hash(a.marking)
            full = mhash ^ default._dbm_hash(a.dbm, a.size)
            assert a.hash64 == full
            assert b.hash64 == full

        _walk(nets["seeded"], reset_policy, check, limit=300)


class TestBoundCap:
    def test_wide_static_interval_is_refused(self):
        net = TimePetriNet("wide")
        net.add_place("p0", marking=1)
        net.add_place("p1")
        net.add_transition(
            "t0", interval=TimeInterval(0, MAX_BOUND + 1)
        )
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        with pytest.raises(SchedulingError, match="EZT204"):
            DbmEngine(net.compile())

    def test_unbounded_interval_is_fine(self):
        net = TimePetriNet("open")
        net.add_place("p0", marking=1)
        net.add_place("p1")
        net.add_transition("t0", interval=TimeInterval(1, INF))
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        engine = DbmEngine(net.compile())
        cls = engine.initial_class()
        # INF maps onto the DINF sentinel, not a saturated bound
        assert cls.dbm[cls.size] == DINF
        assert engine.fire_window(cls, 0) == (1, INF)
