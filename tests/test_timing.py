"""Tests for the hyper-period / instance mathematics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.spec import (
    SpecBuilder,
    check_harmonic,
    demand_in_window,
    expand_instances,
    instance_count,
    lcm,
    mine_pump,
    schedule_period,
    total_instances,
    utilization_breakdown,
)


class TestLcm:
    def test_basic(self):
        assert lcm([4, 6]) == 12
        assert lcm([80, 500, 1000, 2500, 6000]) == 30000

    def test_empty(self):
        assert lcm([]) == 1

    def test_non_positive_rejected(self):
        with pytest.raises(SpecificationError):
            lcm([0, 3])

    @given(
        st.lists(
            st.integers(min_value=1, max_value=200),
            min_size=1,
            max_size=6,
        )
    )
    def test_divides_all(self, values):
        result = lcm(values)
        assert all(result % v == 0 for v in values)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=60),
            min_size=1,
            max_size=4,
        )
    )
    def test_matches_math_lcm(self, values):
        assert lcm(values) == math.lcm(*values)


class TestSchedulePeriod:
    def test_mine_pump_period(self):
        assert schedule_period(mine_pump()) == 30000

    def test_mine_pump_instances(self):
        assert total_instances(mine_pump()) == 782

    def test_instance_count_per_task(self):
        spec = mine_pump()
        period = schedule_period(spec)
        counts = {
            t.name: instance_count(t, period) for t in spec.tasks
        }
        assert counts["PMC"] == 375
        assert counts["AFH"] == 5
        assert counts["COH"] == 12
        assert counts["RLWH"] == 30
        assert sum(counts.values()) == 782

    def test_instance_count_non_divisor_rejected(self):
        spec = mine_pump()
        with pytest.raises(SpecificationError):
            instance_count(spec.tasks[0], 30001)

    def test_empty_spec_rejected(self):
        from repro.spec import EzRTSpec

        with pytest.raises(SpecificationError):
            schedule_period(EzRTSpec("empty"))


class TestExpandInstances:
    def _spec(self):
        return (
            SpecBuilder("x")
            .task("A", computation=1, deadline=4, period=5, phase=1,
                  release=1)
            .task("B", computation=2, deadline=10, period=10)
            .build()
        )

    def test_expansion(self):
        instances = expand_instances(self._spec())
        a_instances = [i for i in instances if i.task == "A"]
        assert [i.arrival for i in a_instances] == [1, 6]
        assert a_instances[0].release == 2
        assert a_instances[0].deadline == 5
        assert a_instances[1].deadline == 10

    def test_sorted_by_arrival(self):
        instances = expand_instances(self._spec())
        arrivals = [i.arrival for i in instances]
        assert arrivals == sorted(arrivals)

    def test_horizon_truncates(self):
        instances = expand_instances(self._spec(), horizon=6)
        assert all(i.arrival < 6 for i in instances)

    def test_mine_pump_expansion_count(self):
        assert len(expand_instances(mine_pump())) == 782

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_counts_match_formula(self, period_a, count):
        spec = (
            SpecBuilder("p")
            .task("A", computation=1, deadline=period_a,
                  period=period_a)
            .task("B", computation=1,
                  deadline=period_a * count,
                  period=period_a * count)
            .build()
        )
        instances = expand_instances(spec)
        expected = total_instances(spec)
        assert len(instances) == expected


class TestUtilization:
    def test_breakdown(self):
        breakdown = utilization_breakdown(mine_pump())
        assert breakdown["PMC"] == pytest.approx(10 / 80)
        assert breakdown["total"] == pytest.approx(0.30445, abs=1e-4)

    def test_demand_in_window(self):
        spec = (
            SpecBuilder("d")
            .task("A", computation=2, deadline=5, period=10)
            .build()
        )
        assert demand_in_window(spec, 0, 5) == 2
        assert demand_in_window(spec, 0, 4) == 0
        assert demand_in_window(spec, 0, 20) == 4

    def test_demand_window_inverted(self):
        with pytest.raises(SpecificationError):
            demand_in_window(mine_pump(), 10, 0)


class TestHarmonic:
    def test_harmonic(self):
        assert check_harmonic([10, 20, 40])
        assert not check_harmonic([10, 15])
        assert check_harmonic([7])
