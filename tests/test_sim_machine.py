"""Tests for the dispatcher machine (simulated target hardware)."""

import pytest

from repro.blocks import compose
from repro.errors import (
    SimulationError,
    TraceVerificationError,
)
from repro.scheduler import (
    ScheduleItem,
    find_schedule,
    schedule_from_result,
)
from repro.sim import (
    DispatcherMachine,
    ensure_trace_ok,
    run_schedule,
    verify_trace,
)
from repro.spec import SpecBuilder, fig8_preemptive


@pytest.fixture(scope="module")
def fig8_bundle():
    model = compose(fig8_preemptive())
    result = find_schedule(model)
    return model, schedule_from_result(model, result)


class TestExecution:
    def test_clean_run(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule)
        assert result.ok
        assert len(result.completions) == 7
        assert verify_trace(model, result) == []

    def test_completion_times_match_schedule(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule)
        for task in model.spec.tasks:
            for k in range(1, model.instances[task.name] + 1):
                planned_end = schedule.segments_of(task.name, k)[-1].end
                assert result.completions[(task.name, k)] == planned_end

    def test_trace_segments_match_schedule(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule)
        simulated = {
            (s.task, s.instance, s.start, s.end)
            for s in result.trace.to_segments()
        }
        planned = {
            (s.task, s.instance, s.start, s.end)
            for s in schedule.segments
        }
        assert simulated == planned

    def test_idle_events_recorded(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule)
        idle = result.trace.of_kind("idle")
        # the machine runs to the required horizon (the last absolute
        # deadline, 35 here, one tick past PS=34)
        assert model.required_horizon() == 35
        assert (
            len(idle)
            == model.required_horizon() - schedule.busy_time()
        )

    def test_trace_rendering(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule)
        rendered = result.trace.render(limit=5)
        assert "... " in rendered
        assert "dispatch" in result.trace.summary()


class TestOverhead:
    def test_small_overhead_may_still_meet(self, fig8_bundle):
        model, schedule = fig8_bundle
        result = run_schedule(model, schedule, dispatch_overhead=0)
        assert verify_trace(model, result) == []

    def test_overhead_eats_computation(self):
        """With overhead the instance cannot deliver its WCET before
        the next dispatch: the verifier must flag it."""
        spec = (
            SpecBuilder("tight")
            .task("A", computation=5, deadline=5, period=10)
            .task("B", computation=5, deadline=10, period=10)
            .build()
        )
        model = compose(spec)
        schedule = schedule_from_result(model, find_schedule(model))
        result = run_schedule(model, schedule, dispatch_overhead=1)
        violations = verify_trace(model, result)
        assert violations  # late or incomplete work

    def test_negative_overhead_rejected(self, fig8_bundle):
        model, _schedule = fig8_bundle
        with pytest.raises(SimulationError):
            DispatcherMachine(model, dispatch_overhead=-1)


class TestUnderrun:
    def test_early_completion_idles(self, fig8_bundle):
        model, schedule = fig8_bundle
        # WCET is 8; with 2 units TaskA1 finishes inside its first
        # segment, so its scheduled resume at t=13 becomes a no-op
        actual = {("TaskA", 1): 2}
        result = run_schedule(
            model, schedule, actual_durations=actual
        )
        assert result.ok
        # resumes of the finished instance become no-ops
        noop = result.trace.of_kind("noop-resume")
        assert [
            (e.task, e.instance) for e in noop
        ] == [("TaskA", 1)]
        assert verify_trace(model, result, actual) == []

    def test_invalid_duration_rejected(self, fig8_bundle):
        model, _schedule = fig8_bundle
        with pytest.raises(SimulationError):
            DispatcherMachine(
                model, actual_durations={("TaskA", 1): 99}
            )
        with pytest.raises(SimulationError):
            DispatcherMachine(
                model, actual_durations={("GHOST", 1): 1}
            )


class TestFaultInjection:
    """Corrupted schedule tables must be caught by the machine."""

    def test_resume_without_context(self, fig8_bundle):
        model, schedule = fig8_bundle
        items = list(schedule.items)
        # flip a fresh start into a bogus resume
        first = items[0]
        items[0] = ScheduleItem(
            start=first.start,
            preempted=True,
            task_id=first.task_id,
            task=first.task,
            instance=first.instance,
            comment="corrupted",
        )
        machine = DispatcherMachine(model)
        result = machine.run(items)
        assert any("no context" in e for e in result.errors)

    def test_missing_resume_detected(self, fig8_bundle):
        model, schedule = fig8_bundle
        items = [
            item for item in schedule.items if not item.preempted
        ]
        machine = DispatcherMachine(model)
        result = machine.run(items)
        assert any("never resumed" in e for e in result.errors)

    def test_wrong_instance_order(self, fig8_bundle):
        model, schedule = fig8_bundle
        items = list(schedule.items)
        first = items[0]
        items[0] = ScheduleItem(
            start=first.start,
            preempted=False,
            task_id=first.task_id,
            task=first.task,
            instance=7,
            comment="corrupted",
        )
        machine = DispatcherMachine(model)
        result = machine.run(items)
        assert any("should be 1" in e for e in result.errors)

    def test_empty_table_rejected(self, fig8_bundle):
        model, _schedule = fig8_bundle
        with pytest.raises(SimulationError):
            DispatcherMachine(model).run([])

    def test_ensure_trace_ok_raises(self, fig8_bundle):
        model, schedule = fig8_bundle
        items = [
            item for item in schedule.items if not item.preempted
        ]
        result = DispatcherMachine(model).run(items)
        with pytest.raises(TraceVerificationError) as info:
            ensure_trace_ok(model, result)
        assert info.value.violations


class TestMinePumpExecution:
    @pytest.mark.slow
    def test_full_hyperperiod(self, mine_pump_model):
        result_search = find_schedule(mine_pump_model)
        schedule = schedule_from_result(
            mine_pump_model, result_search
        )
        result = run_schedule(mine_pump_model, schedule)
        assert result.ok
        assert len(result.completions) == 782
        assert verify_trace(mine_pump_model, result) == []
