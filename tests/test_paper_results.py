"""Regression tests pinning the paper's published numbers (Section 5).

These are the reproduction's headline checks; EXPERIMENTS.md records
the paper-vs-measured comparison these tests enforce.
"""

import pytest

from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.scheduler import (
    find_schedule,
    schedule_from_result,
    validate_schedule,
)
from repro.spec import (
    MINE_PUMP_TABLE1,
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
    schedule_period,
    total_instances,
)


class TestTable1:
    def test_table_rows(self):
        """Table 1 exactly as printed."""
        spec = mine_pump()
        assert len(spec.tasks) == 10
        for (name, c, d, p), task in zip(MINE_PUMP_TABLE1, spec.tasks):
            assert task.name == name
            assert task.computation == c
            assert task.deadline == d
            assert task.period == p

    def test_782_instances(self):
        """'This problem has 10 tasks, implying 782 tasks' instances.'"""
        assert total_instances(mine_pump()) == 782

    def test_schedule_period(self):
        assert schedule_period(mine_pump()) == 30000


@pytest.mark.slow
class TestMinePumpSearch:
    @pytest.fixture(scope="class")
    def outcome(self):
        model = compose(mine_pump())
        result = find_schedule(model)
        return model, result

    def test_feasible(self, outcome):
        _model, result = outcome
        assert result.feasible

    def test_minimum_states_is_3130(self, outcome):
        """'minimum number of states is 3130'."""
        model, result = outcome
        assert model.minimum_firings() == 3130
        assert result.minimum_firings == 3130

    def test_visited_close_to_paper_3268(self, outcome):
        """'Our solution searched 3268 states.'  The exact count
        depends on tie-breaking details the paper does not give; the
        reproduction must stay within 10% of the published figure."""
        _model, result = outcome
        assert 3130 <= result.stats.states_visited <= 3595

    def test_backtrack_free_path(self, outcome):
        """The found schedule itself is the 3130-firing minimum path."""
        _model, result = outcome
        assert result.schedule_length == 3130

    def test_search_is_fast(self, outcome):
        """Paper: 330 ms on an Athlon 1800; modern hardware should be
        comfortably under 5 s even in CI."""
        _model, result = outcome
        assert result.stats.elapsed_seconds < 5.0

    def test_schedule_is_valid(self, outcome):
        model, result = outcome
        schedule = schedule_from_result(model, result)
        assert validate_schedule(model, schedule) == []
        assert schedule.makespan <= 30000

    def test_all_instances_scheduled(self, outcome):
        model, result = outcome
        schedule = schedule_from_result(model, result)
        scheduled = {
            (s.task, s.instance) for s in schedule.segments
        }
        assert len(scheduled) == 782


class TestFig3:
    def test_schedule_respects_precedence(self):
        model = compose(fig3_precedence())
        result = find_schedule(model)
        assert result.feasible
        schedule = schedule_from_result(model, result)
        for k in (1, 2):
            t1 = schedule.segments_of("T1", k)
            t2 = schedule.segments_of("T2", k)
            assert t2[0].start >= t1[-1].end

    def test_expanded_structure_matches_figure(self):
        model = compose(
            fig3_precedence(),
            ComposerOptions(style=BlockStyle.EXPANDED),
        )
        net = model.net
        # the figure's nodes (modulo naming convention)
        for node in (
            "pwa_T1", "pwr_T1", "pwg_T1", "pwc_T1", "pwf_T1", "pf_T1",
            "pwd_T1", "pdm_T1", "pwpc_T1", "pprec_T1_T2",
        ):
            assert net.has_place(node), node
        for node in (
            "tph_T1", "ta_T1", "tr_T1", "tg_T1", "tc_T1", "tf_T1",
            "td_T1", "tpc_T1",
        ):
            assert net.has_transition(node), node


class TestFig4:
    def test_schedule_respects_exclusion(self):
        model = compose(fig4_exclusion())
        result = find_schedule(model)
        assert result.feasible
        schedule = schedule_from_result(model, result)
        for k0 in (1, 2):
            t0 = schedule.segments_of("T0", k0)
            envelope = (t0[0].start, t0[-1].end)
            for k2 in (1, 2):
                for seg in schedule.segments_of("T2", k2):
                    assert not (
                        seg.start < envelope[1]
                        and seg.end > envelope[0]
                    )

    def test_computation_times_via_weights(self):
        """Fig. 4's '10' and '20' arc labels are the computation
        times of the preemptive unit-subtask encoding."""
        model = compose(fig4_exclusion())
        net = model.net
        assert net.input_weight("pwf_T0", "tf_T0") == 10
        assert net.input_weight("pwf_T2", "tf_T2") == 20


class TestFig8:
    @pytest.fixture(scope="class")
    def schedule(self):
        model = compose(fig8_preemptive())
        result = find_schedule(model)
        assert result.feasible
        return schedule_from_result(model, result)

    def test_table_shape(self, schedule):
        """Two instances of A/B/C, one of D; preemptions nest like the
        figure: B preempts A, C preempts B, D preempts B."""
        comments = [item.comment for item in schedule.items]
        assert "TaskB1 preempts TaskA1" in comments
        assert "TaskC1 preempts TaskB1" in comments
        assert "TaskD1 preempts TaskB1" in comments
        assert comments.count("TaskB1 resumes") == 2
        assert "TaskA1 resumes" in comments

    def test_resume_flags(self, schedule):
        flags = [
            (item.preempted, item.comment) for item in schedule.items
        ]
        for preempted, comment in flags:
            assert preempted == comment.endswith("resumes")

    def test_paper_format_rendering(self, schedule):
        from repro.codegen import render_paper_style

        text = render_paper_style(schedule.items)
        assert text.startswith(
            "struct ScheduleItem scheduleTable [SCHEDULE_SIZE] ="
        )
        assert "/* A1 starts */" in text
        assert "/* B1 preempts A1 */" in text
        assert "(int *)TaskA" in text
        assert text.rstrip().endswith("};")
