"""Tests for the bounded state-space explorer."""

import pytest

from repro.errors import SchedulingError
from repro.tpn import (
    TimeInterval,
    TimePetriNet,
    explore,
    find_state,
    reachable_markings,
)


class TestExplore:
    def test_simple_net_space(self, simple_net):
        graph = explore(simple_net.compile(), earliest_only=False)
        # all delays collapse: s0, after t_start, after t_end
        assert graph.num_states == 3
        assert graph.complete
        assert len(graph.deadlocks) == 1

    def test_deadlock_is_final(self, simple_net):
        compiled = simple_net.compile()
        graph = explore(compiled, earliest_only=False)
        dead = graph.states[graph.deadlocks[0]]
        assert compiled.is_final(dead.marking)

    def test_conflict_space(self, conflict_net):
        graph = explore(conflict_net.compile(), earliest_only=False)
        markings = graph.markings()
        assert (0, 1, 0) in markings  # chose t_a
        assert (0, 0, 1) in markings  # chose t_b

    def test_max_states_truncation(self, conflict_net):
        graph = explore(
            conflict_net.compile(), max_states=1, earliest_only=False
        )
        assert not graph.complete
        assert graph.num_states == 1

    def test_bfs_dfs_same_state_set(self, conflict_net):
        compiled = conflict_net.compile()
        bfs = explore(compiled, strategy="bfs", earliest_only=False)
        dfs = explore(compiled, strategy="dfs", earliest_only=False)
        assert bfs.markings() == dfs.markings()

    def test_unknown_strategy(self, conflict_net):
        with pytest.raises(SchedulingError):
            explore(conflict_net.compile(), strategy="astar")

    def test_unbounded_domain_flagged_incomplete(self):
        net = TimePetriNet("u")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval.unbounded(0))
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        graph = explore(net.compile(), earliest_only=False)
        assert not graph.complete  # couldn't enumerate all delays

    def test_clock_differences_distinguish_states(self):
        """Two paths reaching the same marking with different clocks
        are distinct states (timed semantics, not just markings)."""
        net = TimePetriNet("clocked")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_place("s")
        net.add_transition("fast", TimeInterval(1, 2))
        net.add_transition("slow", TimeInterval(5, 8))
        net.add_arc("p", "fast")
        net.add_arc("fast", "r")
        net.add_arc("q", "slow")
        net.add_arc("slow", "s")
        graph = explore(net.compile(), earliest_only=False)
        markings = [state.marking for state in graph.states]
        # marking after firing `fast` occurs with clock(slow)=1 and 2
        target = markings.count((0, 1, 1, 0))
        assert target == 2

    def test_edge_count(self, simple_net):
        graph = explore(simple_net.compile(), earliest_only=False)
        # 3 delays for t_start + 1 for t_end
        assert graph.num_edges == 4

    def test_max_tokens(self):
        net = TimePetriNet("grow")
        net.add_place("budget", marking=3)
        net.add_place("sink")
        net.add_transition("t", TimeInterval.point(1))
        net.add_arc("budget", "t")
        net.add_arc("t", "sink", 2)
        graph = explore(net.compile())
        assert graph.max_tokens() == 6


class TestHelpers:
    def test_reachable_markings(self, simple_net):
        markings = reachable_markings(simple_net.compile())
        assert (1, 1, 0, 0) in markings
        assert (0, 1, 0, 1) in markings

    def test_find_state(self, simple_net):
        compiled = simple_net.compile()
        state = find_state(
            compiled,
            lambda s: s.marking[compiled.place_index["done"]] == 1,
        )
        assert state is not None

    def test_find_state_none(self, simple_net):
        compiled = simple_net.compile()
        assert (
            find_state(compiled, lambda s: sum(s.marking) > 99) is None
        )
