"""Tests for the TLTS net simulator (shared incremental engine)."""

import pytest

from repro.errors import SimulationError
from repro.blocks import compose
from repro.sim import NetSimulator, simulate_net
from repro.spec import paper_examples
from repro.tpn import TLTS
from repro.workloads import random_task_set


class TestEarliestWalk:
    def test_simple_net_reaches_final(self, simple_net):
        run = simulate_net(simple_net.compile())
        assert run.reached_final
        assert run.steps == 2
        assert [f[0] for f in run.firings] == ["t_start", "t_end"]
        assert run.makespan == 5  # earliest: 2 + 3

    def test_walk_is_a_legal_tlts_run(self, simple_net):
        compiled = simple_net.compile()
        run = simulate_net(compiled)
        tlts = TLTS(compiled)
        assert tlts.is_feasible_schedule(
            [(name, q) for name, q, _at in run.firings]
        )

    def test_earliest_walk_is_deterministic(self):
        net = compose(paper_examples()["fig3"]).compiled()
        first = simulate_net(net)
        second = simulate_net(net)
        assert first.firings == second.firings

    def test_step_budget_stops_walk(self, simple_net):
        run = simulate_net(simple_net.compile(), max_steps=1)
        assert run.steps == 1
        assert not run.reached_final


class TestRandomWalk:
    def test_seed_reproducibility(self, simple_net):
        compiled = simple_net.compile()
        a = simulate_net(compiled, policy="random", seed=5)
        b = simulate_net(compiled, policy="random", seed=5)
        assert a.firings == b.firings

    def test_random_walks_are_legal_runs(self):
        spec = random_task_set(
            3, total_utilization=0.4, seed=2, period_grid=(8, 16)
        )
        compiled = compose(spec).compiled()
        tlts = TLTS(compiled)
        for seed in range(4):
            run = NetSimulator(compiled).run(
                policy="random", seed=seed, max_steps=60
            )
            # every prefix the walk produced must replay cleanly
            tlts.replay([(n, q) for n, q, _at in run.firings])

    def test_unknown_policy_rejected(self, simple_net):
        with pytest.raises(SimulationError, match="unknown walk"):
            NetSimulator(simple_net.compile()).run(policy="chaotic")

    def test_negative_budget_rejected(self, simple_net):
        with pytest.raises(SimulationError, match="max_steps"):
            NetSimulator(simple_net.compile()).run(max_steps=-1)


class TestModelWalks:
    def test_walk_detects_deadline_miss_or_completes(self):
        """On a composed model the walk either finishes the schedule
        period or stops at a marked miss place — never wanders."""
        spec = random_task_set(
            2, total_utilization=0.3, seed=4, period_grid=(10, 20)
        )
        compiled = compose(spec).compiled()
        run = NetSimulator(compiled).run(max_steps=10_000)
        assert run.reached_final or run.missed_deadline or (
            run.deadlocked
        )
