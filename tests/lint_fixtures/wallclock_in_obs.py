"""Fixture: wall-clock reads planted in a deterministic module.

The ``lint-module`` directive makes the rules treat this file as part
of :mod:`repro.obs`, where output must be byte-identical run over run.
"""
# lint-module: repro/obs/fixture_sink.py

import time
from datetime import datetime


def stamp_row(row):
    row["written_at"] = time.time()  # expect: EZC101
    row["pretty"] = datetime.now().isoformat()  # expect: EZC101
    return row


def localised(row):
    row["local"] = time.strftime("%H:%M")  # expect: EZC101
    return row


def duration_since(t0):
    # durations (monotonic/perf_counter) are deliberately allowed
    return time.monotonic() - t0
