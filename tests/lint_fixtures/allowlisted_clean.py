"""Fixture: an allowlisted wall-clock call produces no finding.

Proves the ``# lint: allow CODE`` escape hatch works: the call below
would be an EZC101 in this impersonated deterministic module, but the
directive on the preceding line suppresses exactly that code there —
and nothing else in the file fires, so the expected finding set is
empty.
"""
# lint-module: repro/batch/fixture_lockinfo.py

import time


def lock_age(mtime):
    # lint: allow EZC101 — cross-process lock aging needs the wall clock
    return max(0.0, time.time() - mtime)
