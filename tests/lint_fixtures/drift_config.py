"""Fixture: fake config dataclass for the fingerprint drift pair.

``drift_cache.py`` names this file in its ``lint-fingerprint-config``
directive; the guard cross-checks the fields below against the
``"scheduler"`` section of that file's ``job_fingerprint``.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SchedulerConfig:
    engine: str = "incremental"
    max_states: int = 100
    policy: str = "earliest"
    trace_jsonl: str | None = None
    progress: bool = False
