"""Fixture: mutable default arguments (the repository-wide rule).

No ``lint-module`` directive: EZC103 applies everywhere, so the plain
basename path is enough to trigger it.
"""

import collections


def append_row(row, rows=[]):  # expect: EZC103
    rows.append(row)
    return rows


def tally(counts={}):  # expect: EZC103
    return counts


def group(key, *, index=collections.defaultdict(list)):  # expect: EZC103
    return index[key]


def fresh(rows=None):
    return list(rows or ())
