"""Fixture: a fingerprint that drifted from its config.

The ``"scheduler"`` section below misses the config's ``policy`` field
(two configs differing only in it would collide on one cache key) and
carries a ``stale_knob`` key that is not a field at all — both are
EZC104 findings anchored on the section's opening line.
"""
# lint-fingerprint-config: drift_config.py


def job_fingerprint(config):
    return {
        "scheduler": {  # expect: EZC104
            "engine": config.engine,
            "max_states": config.max_states,
            "stale_knob": True,
        },
    }
