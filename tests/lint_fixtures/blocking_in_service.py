"""Fixture: blocking calls planted inside service coroutines.

Impersonates a :mod:`repro.service` module, where ``async def`` bodies
must never call into blocking I/O — one stalled coroutine stalls every
connection on the event loop.
"""
# lint-module: repro/service/fixture_handler.py

import subprocess
import time


async def handle(request):
    time.sleep(0.1)  # expect: EZC102
    with open("state.json") as handle:  # expect: EZC102
        data = handle.read()
    subprocess.run(["sync"])  # expect: EZC102
    return data


async def nested():
    async def inner():
        return subprocess.check_output(["true"])  # expect: EZC102

    return await inner()


def blocking_is_fine_outside_coroutines(path):
    with open(path) as handle:
        return handle.read()
