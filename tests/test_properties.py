"""Hypothesis property tests over the whole pipeline.

These encode the invariants that must hold for *any* input, not just
the canned case studies:

* the firing rule conserves the incidence-matrix semantics (state
  equation) along every run;
* any schedule the search returns replays as a legal TLTS run reaching
  ``M_F`` (Definition 3.2) — the search can never fabricate firings;
* every feasible schedule passes the independent validator and executes
  cleanly on the dispatcher machine;
* paper-vs-intermediate clock semantics agree on nets without token
  refill races.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SchedulerConfig,
    compose,
    find_schedule,
    run_schedule,
    schedule_from_result,
    verify_trace,
)
from repro.scheduler import validate_schedule
from repro.spec import SpecBuilder
from repro.tpn import TLTS, TimeInterval, TimePetriNet, explore


@st.composite
def bounded_nets(draw):
    """Random small nets whose transitions always consume something."""
    n_places = draw(st.integers(min_value=2, max_value=5))
    n_transitions = draw(st.integers(min_value=1, max_value=4))
    net = TimePetriNet("prop")
    for i in range(n_places):
        net.add_place(f"p{i}", marking=draw(st.integers(0, 2)))
    for j in range(n_transitions):
        eft = draw(st.integers(0, 4))
        net.add_transition(
            f"t{j}",
            TimeInterval(eft, eft + draw(st.integers(0, 4))),
            priority=draw(st.integers(0, 3)),
        )
        inputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        outputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        for p in inputs:
            net.add_arc(f"p{p}", f"t{j}", draw(st.integers(1, 2)))
        for p in outputs:
            net.add_arc(f"t{j}", f"p{p}", draw(st.integers(1, 2)))
    return net


@st.composite
def schedulable_specs(draw):
    """Small specs with modest utilisation and mixed features."""
    n = draw(st.integers(min_value=1, max_value=4))
    builder = SpecBuilder("prop").processor("proc0")
    period_pool = [10, 20, 40]
    budget = 0.75
    for i in range(n):
        period = draw(st.sampled_from(period_pool))
        max_c = max(1, int(budget * period / n))
        computation = draw(st.integers(1, max(1, min(max_c, period))))
        deadline = draw(st.integers(computation, period))
        release = draw(st.integers(0, deadline - computation))
        builder.task(
            f"T{i}",
            computation=computation,
            deadline=deadline,
            period=period,
            release=release,
            phase=draw(st.integers(0, 4)),
            scheduling=draw(st.sampled_from(["NP", "P"])),
        )
    return builder.build()


class TestStateEquation:
    @given(bounded_nets())
    @settings(max_examples=40, deadline=None)
    def test_marking_obeys_state_equation(self, net):
        """m' = m + C·(firing count vector) along every explored edge."""
        from repro.tpn import incidence_matrix

        compiled = net.compile()
        matrix = incidence_matrix(net)
        graph = explore(compiled, max_states=60)
        for i, state in enumerate(graph.states):
            for t, _q, j in graph.edges[i]:
                successor = graph.states[j]
                for p in range(compiled.num_places):
                    assert (
                        successor.marking[p]
                        == state.marking[p] + matrix[p][t]
                    )

    @given(bounded_nets())
    @settings(max_examples=40, deadline=None)
    def test_clocks_never_exceed_lft(self, net):
        """Strong semantics: an enabled transition's clock never passes
        its latest firing time."""
        compiled = net.compile()
        graph = explore(compiled, max_states=60)
        for state in graph.states:
            for t, clock in enumerate(state.clocks):
                if clock >= 0 and compiled.lft[t] != float("inf"):
                    assert clock <= compiled.lft[t]


class TestSearchSoundness:
    @given(schedulable_specs())
    @settings(max_examples=25, deadline=None)
    def test_found_schedules_replay_as_feasible_runs(self, spec):
        model = compose(spec)
        result = find_schedule(
            model, SchedulerConfig(max_states=40_000)
        )
        if not result.feasible:
            return
        tlts = TLTS(model.net.compile())
        assert tlts.is_feasible_schedule(
            [(name, q) for name, q, _t in result.firing_schedule]
        )

    @given(schedulable_specs())
    @settings(max_examples=25, deadline=None)
    def test_found_schedules_validate_and_execute(self, spec):
        model = compose(spec)
        result = find_schedule(
            model, SchedulerConfig(max_states=40_000)
        )
        if not result.feasible:
            return
        schedule = schedule_from_result(model, result)
        assert validate_schedule(model, schedule) == []
        machine_result = run_schedule(model, schedule)
        assert machine_result.ok
        assert verify_trace(model, machine_result) == []

    @given(schedulable_specs())
    @settings(max_examples=15, deadline=None)
    def test_partial_order_preserves_feasibility(self, spec):
        """The reduction must never turn a feasible set infeasible."""
        model = compose(spec)
        with_reduction = find_schedule(
            model,
            SchedulerConfig(partial_order=True, max_states=40_000),
        )
        without_reduction = find_schedule(
            model,
            SchedulerConfig(partial_order=False, max_states=40_000),
        )
        if without_reduction.feasible and not (
            without_reduction.exhausted
        ):
            assert with_reduction.feasible

    @given(schedulable_specs())
    @settings(max_examples=15, deadline=None)
    def test_reset_policies_agree_without_refill_races(self, spec):
        """Composed task nets have no transition that refills its own
        input places, so both clock-reset semantics must agree."""
        model = compose(spec)
        paper = find_schedule(
            model,
            SchedulerConfig(reset_policy="paper", max_states=40_000),
        )
        intermediate = find_schedule(
            model,
            SchedulerConfig(
                reset_policy="intermediate", max_states=40_000
            ),
        )
        assert paper.feasible == intermediate.feasible


class TestCrossValidation:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_search_agrees_with_edf_demand_on_preemptive_sets(
        self, seed
    ):
        """For preemptive, independent, synchronous task sets the
        exact EDF demand-bound test characterises feasibility; the
        pre-runtime search must agree in both directions.  This
        cross-validates the whole TPN pipeline against classical
        scheduling theory through an entirely independent computation.
        """
        from repro.analysis import edf_feasible
        from repro.workloads import random_task_set

        spec = random_task_set(
            3,
            total_utilization=0.9,
            seed=seed,
            preemptive_fraction=1.0,
            deadline_slack=0.6,
            period_grid=(8, 12, 16, 24),
        )
        # synchronous pattern: the demand test assumes zero phases
        assert all(t.phase == 0 for t in spec.tasks)
        demand = edf_feasible(spec)
        result = find_schedule(
            compose(spec), SchedulerConfig(max_states=200_000)
        )
        if result.exhausted:
            return  # budget hit; no verdict to compare
        assert result.feasible == demand.feasible


class TestScheduleInvariants:
    @given(schedulable_specs())
    @settings(max_examples=20, deadline=None)
    def test_schedule_table_invariants(self, spec):
        model = compose(spec)
        result = find_schedule(
            model, SchedulerConfig(max_states=40_000)
        )
        if not result.feasible:
            return
        schedule = schedule_from_result(model, result)
        items = schedule.items
        # sorted starts
        assert all(
            a.start <= b.start for a, b in zip(items, items[1:])
        )
        # the first appearance of every instance is a fresh start
        seen = set()
        for item in items:
            key = (item.task, item.instance)
            if key not in seen:
                assert not item.preempted
                seen.add(key)
        # busy time equals total demanded work
        demanded = sum(
            t.computation * model.instances[t.name]
            for t in spec.tasks
        )
        assert schedule.busy_time() == demanded
