"""Tests for the ez-spec XML DSL (paper Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DSLError
from repro.spec import (
    PAPER_FIG7_SNIPPET,
    SchedulingType,
    SpecBuilder,
    dumps,
    load,
    loads,
    mine_pump,
    save,
)


class TestPaperSnippet:
    def test_parses_verbatim(self):
        spec = loads(PAPER_FIG7_SNIPPET)
        assert [t.name for t in spec.tasks] == ["T1", "T2"]

    def test_field_mapping(self):
        """The figure's element names map onto the metamodel fields."""
        spec = loads(PAPER_FIG7_SNIPPET)
        t1 = spec.task("T1")
        assert t1.period == 9
        assert t1.computation == 1  # <computing>
        assert t1.deadline == 9
        assert t1.energy == 10  # <power>
        assert t1.scheduling is SchedulingType.NON_PREEMPTIVE  # NP
        assert t1.identifier == "ez1151891"

    def test_reference_resolution(self):
        spec = loads(PAPER_FIG7_SNIPPET)
        assert spec.precedence_pairs() == [("T1", "T2")]

    def test_processor_reference_resolution(self):
        spec = loads(PAPER_FIG7_SNIPPET)
        # <processor>p124365</processor> resolves via the Processor
        # element's identifier to its name
        assert spec.task("T1").processor == "mcu0"
        assert spec.processors[0].identifier == "p124365"


class TestRoundTrip:
    def specs(self):
        yield mine_pump()
        yield (
            SpecBuilder("rel")
            .processor("cpu")
            .task("A", computation=1, deadline=5, period=10, phase=2,
                  release=1, energy=7, code="a();")
            .task("B", computation=2, deadline=10, period=10,
                  scheduling="P")
            .precedence("A", "B")
            .exclusion("A", "B")
            .message("m", sender="A", receiver="B", communication=2,
                     bus="can0", grant_bus=1)
            .build()
        )

    def test_roundtrip_all_fields(self):
        for spec in self.specs():
            reparsed = loads(dumps(spec))
            assert [t.name for t in reparsed.tasks] == [
                t.name for t in spec.tasks
            ]
            for original in spec.tasks:
                parsed = reparsed.task(original.name)
                assert parsed.computation == original.computation
                assert parsed.deadline == original.deadline
                assert parsed.period == original.period
                assert parsed.release == original.release
                assert parsed.phase == original.phase
                assert parsed.energy == original.energy
                assert parsed.scheduling is original.scheduling
                assert parsed.identifier == original.identifier
                assert sorted(parsed.precedes_tasks) == sorted(
                    original.precedes_tasks
                )
                assert sorted(parsed.excludes_tasks) == sorted(
                    original.excludes_tasks
                )
                if original.code:
                    assert parsed.code.content == original.code.content
            assert reparsed.precedence_pairs() == (
                spec.precedence_pairs()
            )
            assert reparsed.exclusion_pairs() == spec.exclusion_pairs()
            for orig_msg, parsed_msg in zip(
                spec.messages, reparsed.messages
            ):
                assert parsed_msg.bus == orig_msg.bus
                assert (
                    parsed_msg.communication == orig_msg.communication
                )
                assert parsed_msg.grant_bus == orig_msg.grant_bus
                assert parsed_msg.sender == orig_msg.sender
                assert parsed_msg.precedes == orig_msg.precedes

    def test_file_roundtrip(self, tmp_path):
        spec = mine_pump()
        path = str(tmp_path / "spec.xml")
        save(spec, path)
        assert [t.name for t in load(path).tasks] == [
            t.name for t in spec.tasks
        ]


class TestLenientParsing:
    def test_one_sided_exclusion_symmetrised(self):
        document = """<?xml version="1.0"?>
        <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
        <Task identifier="a" excludesTasks="#b">
          <name>A</name><period>10</period><computing>1</computing>
          <deadline>5</deadline>
        </Task>
        <Task identifier="b">
          <name>B</name><period>10</period><computing>1</computing>
          <deadline>5</deadline>
        </Task>
        </rt:ez-spec>"""
        spec = loads(document)
        assert spec.exclusion_pairs() == [("A", "B")]

    def test_bare_name_references(self):
        document = """<?xml version="1.0"?>
        <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
        <Task identifier="a" precedesTasks="B">
          <name>A</name><period>10</period><computing>1</computing>
          <deadline>5</deadline>
        </Task>
        <Task identifier="b">
          <name>B</name><period>10</period><computing>1</computing>
          <deadline>5</deadline>
        </Task>
        </rt:ez-spec>"""
        assert loads(document).precedence_pairs() == [("A", "B")]

    def test_schedulingmode_defaults_to_np(self):
        document = """<?xml version="1.0"?>
        <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
        <Task identifier="a">
          <name>A</name><period>10</period><computing>1</computing>
          <deadline>5</deadline>
        </Task>
        </rt:ez-spec>"""
        task = loads(document).task("A")
        assert task.scheduling is SchedulingType.NON_PREEMPTIVE


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(DSLError, match="malformed"):
            loads("<rt:ez-spec")

    def test_wrong_root(self):
        with pytest.raises(DSLError, match="expected rt:ez-spec"):
            loads("<wrong/>")

    def test_unknown_element(self):
        with pytest.raises(DSLError, match="unknown ez-spec element"):
            loads(
                '<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">'
                "<Widget/></rt:ez-spec>"
            )

    def test_task_without_name(self):
        with pytest.raises(DSLError, match="lacks a name"):
            loads(
                '<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">'
                "<Task identifier='x'><period>5</period>"
                "<computing>1</computing><deadline>5</deadline>"
                "</Task></rt:ez-spec>"
            )

    def test_missing_computing(self):
        with pytest.raises(DSLError, match="missing computing"):
            loads(
                '<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">'
                "<Task identifier='x'><name>A</name>"
                "<period>5</period><deadline>5</deadline>"
                "</Task></rt:ez-spec>"
            )

    def test_unresolved_reference(self):
        with pytest.raises(DSLError, match="unresolved reference"):
            loads(
                '<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">'
                "<Task identifier='x' precedesTasks='#ghost'>"
                "<name>A</name><period>5</period>"
                "<computing>1</computing><deadline>5</deadline>"
                "</Task></rt:ez-spec>"
            )

    def test_non_integer_field(self):
        with pytest.raises(DSLError, match="must be an integer"):
            loads(
                '<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">'
                "<Task identifier='x'><name>A</name>"
                "<period>ten</period><computing>1</computing>"
                "<deadline>5</deadline></Task></rt:ez-spec>"
            )

    def test_invalid_spec_caught_by_validation(self):
        document = """<?xml version="1.0"?>
        <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
        <Task identifier="a">
          <name>A</name><period>5</period><computing>9</computing>
          <deadline>5</deadline>
        </Task>
        </rt:ez-spec>"""
        with pytest.raises(Exception):
            loads(document)
        # but parsing alone succeeds when validation is off
        spec = loads(document, validate=False)
        assert spec.task("A").computation == 9


@st.composite
def random_specs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    builder = SpecBuilder(
        draw(st.text(alphabet="abcdef", min_size=1, max_size=8))
    ).processor("proc0")
    period_pool = [5, 10, 20, 25, 50]
    names = []
    for i in range(n):
        period = draw(st.sampled_from(period_pool))
        computation = draw(st.integers(1, max(1, period // 2)))
        deadline = draw(st.integers(computation, period))
        release = draw(
            st.integers(0, max(0, deadline - computation))
        )
        builder.task(
            f"T{i}",
            computation=computation,
            deadline=deadline,
            period=period,
            release=release,
            phase=draw(st.integers(0, 3)),
            scheduling=draw(st.sampled_from(["NP", "P"])),
            energy=draw(st.integers(0, 50)),
        )
        names.append(f"T{i}")
    return builder.build()


class TestRoundTripProperty:
    @given(random_specs())
    @settings(max_examples=40, deadline=None)
    def test_dsl_roundtrip_lossless(self, spec):
        reparsed = loads(dumps(spec))
        assert len(reparsed.tasks) == len(spec.tasks)
        for original in spec.tasks:
            parsed = reparsed.task(original.name)
            assert (
                parsed.computation,
                parsed.deadline,
                parsed.period,
                parsed.release,
                parsed.phase,
                parsed.energy,
                parsed.scheduling,
            ) == (
                original.computation,
                original.deadline,
                original.period,
                original.release,
                original.phase,
                original.energy,
                original.scheduling,
            )
