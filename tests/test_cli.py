"""End-to-end tests of the ``ezrt`` command-line interface."""

import os

import pytest

from repro.cli import main
from repro.spec import dumps, mine_pump


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.xml"
    path.write_text(dumps(mine_pump()))
    return str(path)


@pytest.fixture
def small_spec_file(tmp_path):
    from repro.spec import SpecBuilder

    spec = (
        SpecBuilder("small")
        .processor("proc0")
        .task("A", computation=2, deadline=10, period=10, code="a();")
        .task("B", computation=3, deadline=10, period=10, code="b();")
        .build()
    )
    path = tmp_path / "small.xml"
    path.write_text(dumps(spec))
    return str(path)


class TestValidate:
    def test_valid(self, capsys, spec_file):
        assert main(["validate", spec_file]) == 0
        assert "is valid" in capsys.readouterr().out

    def test_builtin(self, capsys):
        assert main(["validate", "@mine-pump"]) == 0
        assert "10 task(s)" in capsys.readouterr().out

    def test_unknown_builtin(self, capsys):
        assert main(["validate", "@nope"]) == 2
        assert "unknown built-in" in capsys.readouterr().err

    def test_invalid_spec(self, tmp_path, capsys):
        document = """<?xml version="1.0"?>
        <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
        <Task identifier="a">
          <name>A</name><period>5</period><computing>9</computing>
          <deadline>5</deadline>
        </Task>
        </rt:ez-spec>"""
        path = tmp_path / "bad.xml"
        path.write_text(document)
        # parse-time validation raises -> CLI error path
        assert main(["validate", str(path)]) == 2


class TestCompile:
    def test_writes_pnml(self, tmp_path, capsys, small_spec_file):
        out = str(tmp_path / "model.pnml")
        assert main(["compile", small_spec_file, "-o", out]) == 0
        assert os.path.exists(out)
        text = capsys.readouterr().out
        assert "places" in text

    def test_pnml_is_readable(self, tmp_path, small_spec_file):
        out = str(tmp_path / "model.pnml")
        main(["compile", small_spec_file, "-o", out])
        from repro.pnml import load

        net = load(out)
        assert net.has_place("pproc_proc0")

    def test_expanded_style_flag(self, tmp_path, small_spec_file):
        out = str(tmp_path / "model.pnml")
        assert (
            main(
                [
                    "compile",
                    small_spec_file,
                    "-o",
                    out,
                    "--style",
                    "expanded",
                ]
            )
            == 0
        )
        from repro.pnml import load

        assert load(out).has_transition("tf_A")


class TestSchedule:
    def test_report_printed(self, capsys, small_spec_file):
        assert main(["schedule", small_spec_file]) == 0
        out = capsys.readouterr().out
        assert "== pre-runtime search ==" in out
        assert "feasible" in out

    def test_gantt_flag(self, capsys, small_spec_file):
        assert main(["schedule", small_spec_file, "--gantt"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_profile_flag(self, capsys, small_spec_file):
        assert main(["schedule", small_spec_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "search profile:" in out
        assert "states visited" in out
        assert "states generated" in out
        assert "deadline prunes" in out
        assert "reductions" in out
        assert "throughput" in out

    def test_engine_flag_reference(self, capsys, small_spec_file):
        assert (
            main(
                [
                    "schedule",
                    small_spec_file,
                    "--engine",
                    "reference",
                ]
            )
            == 0
        )
        assert "feasible" in capsys.readouterr().out

    def test_engine_flag_stateclass(self, capsys, small_spec_file):
        assert (
            main(
                [
                    "schedule",
                    small_spec_file,
                    "--engine",
                    "stateclass",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "feasible" in out
        assert "dense firing windows" in out
        assert "dense window" in out

    def test_stateclass_rejects_delay_modes(self, capsys, small_spec_file):
        assert (
            main(
                [
                    "schedule",
                    small_spec_file,
                    "--engine",
                    "stateclass",
                    "--delay-mode",
                    "full",
                ]
            )
            == 2
        )
        assert "delay_mode" in capsys.readouterr().err

    def test_infeasible_exit_code(self, tmp_path, capsys):
        from repro.spec import SpecBuilder

        spec = (
            SpecBuilder("over")
            .task("A", computation=6, deadline=10, period=10)
            .task("B", computation=6, deadline=10, period=10)
            .build()
        )
        path = tmp_path / "over.xml"
        path.write_text(dumps(spec))
        assert main(["schedule", str(path)]) == 1

    def test_search_flags(self, capsys, small_spec_file):
        assert (
            main(
                [
                    "schedule",
                    small_spec_file,
                    "--delay-mode",
                    "extremes",
                    "--priority-mode",
                    "strict",
                    "--no-partial-order",
                    "--max-states",
                    "100000",
                ]
            )
            == 0
        )


class TestCodegen:
    def test_generates_project(self, tmp_path, capsys, small_spec_file):
        out = str(tmp_path / "gen")
        assert main(["codegen", small_spec_file, "-o", out]) == 0
        files = os.listdir(out)
        assert "ezrt_schedule.c" in files
        assert "ezrt_dispatcher.c" in files
        assert "Makefile" in files
        content = open(
            os.path.join(out, "ezrt_tasks.c")
        ).read()
        assert "a();" in content

    def test_embedded_target(self, tmp_path, small_spec_file):
        out = str(tmp_path / "gen8051")
        assert (
            main(
                [
                    "codegen",
                    small_spec_file,
                    "-o",
                    out,
                    "--target",
                    "8051",
                ]
            )
            == 0
        )
        dispatcher = open(
            os.path.join(out, "ezrt_dispatcher.c")
        ).read()
        assert "interrupt 1" in dispatcher


class TestSimulate:
    def test_clean_simulation(self, capsys, small_spec_file):
        assert main(["simulate", small_spec_file]) == 0
        assert "trace verified" in capsys.readouterr().out

    def test_overhead_can_break(self, capsys, tmp_path):
        from repro.spec import SpecBuilder

        spec = (
            SpecBuilder("tight")
            .task("A", computation=5, deadline=5, period=10)
            .task("B", computation=5, deadline=10, period=10)
            .build()
        )
        path = tmp_path / "tight.xml"
        path.write_text(dumps(spec))
        assert (
            main(["simulate", str(path), "--overhead", "1"]) == 1
        )
        assert "FAILED" in capsys.readouterr().out


class TestExportExamples:
    def test_export_builtin(self, tmp_path, capsys):
        out = str(tmp_path / "mp.xml")
        assert main(["export", "@mine-pump", "-o", out]) == 0
        assert os.path.exists(out)

    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "@mine-pump" in out
        assert "@fig8" in out

    def test_exported_spec_revalidates(self, tmp_path):
        out = str(tmp_path / "mp.xml")
        main(["export", "@mine-pump", "-o", out])
        assert main(["validate", out]) == 0
