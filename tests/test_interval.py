"""Unit and property tests for static timing intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetConstructionError
from repro.tpn import INF, TimeInterval


class TestConstruction:
    def test_basic(self):
        interval = TimeInterval(2, 5)
        assert interval.eft == 2
        assert interval.lft == 5

    def test_point(self):
        assert TimeInterval.point(7) == TimeInterval(7, 7)

    def test_zero(self):
        zero = TimeInterval.zero()
        assert zero.is_immediate
        assert zero.is_punctual

    def test_unbounded(self):
        interval = TimeInterval.unbounded(3)
        assert interval.eft == 3
        assert interval.is_unbounded

    def test_inverted_rejected(self):
        with pytest.raises(NetConstructionError):
            TimeInterval(5, 2)

    def test_negative_eft_rejected(self):
        with pytest.raises(NetConstructionError):
            TimeInterval(-1, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(NetConstructionError):
            TimeInterval(1.5, 2)  # type: ignore[arg-type]
        with pytest.raises(NetConstructionError):
            TimeInterval(1, 2.5)  # type: ignore[arg-type]

    def test_bool_rejected(self):
        with pytest.raises(NetConstructionError):
            TimeInterval(True, 2)  # type: ignore[arg-type]


class TestParse:
    def test_plain(self):
        assert TimeInterval.parse("[3, 7]") == TimeInterval(3, 7)

    def test_whitespace(self):
        assert TimeInterval.parse("  [ 0 ,  0 ] ") == TimeInterval.zero()

    @pytest.mark.parametrize("upper", ["inf", "oo", "w", "INF"])
    def test_infinite_upper(self, upper):
        assert TimeInterval.parse(f"[2, {upper}]").is_unbounded

    @pytest.mark.parametrize(
        "text", ["", "3,7", "[3 7]", "[a, b]", "[3,]"]
    )
    def test_malformed(self, text):
        with pytest.raises(NetConstructionError):
            TimeInterval.parse(text)

    def test_str_parse_roundtrip(self):
        for interval in (
            TimeInterval(0, 0),
            TimeInterval(3, 9),
            TimeInterval.unbounded(4),
        ):
            assert TimeInterval.parse(str(interval)) == interval


class TestQueries:
    def test_contains(self):
        interval = TimeInterval(2, 5)
        assert not interval.contains(1)
        assert interval.contains(2)
        assert interval.contains(5)
        assert not interval.contains(6)

    def test_contains_unbounded(self):
        assert TimeInterval.unbounded(2).contains(10**9)

    def test_width(self):
        assert TimeInterval(2, 5).width == 3
        assert TimeInterval.unbounded(2).width == INF

    def test_intersect(self):
        a = TimeInterval(2, 6)
        b = TimeInterval(4, 9)
        assert a.intersect(b) == TimeInterval(4, 6)

    def test_intersect_disjoint(self):
        assert TimeInterval(0, 2).intersect(TimeInterval(5, 6)) is None

    def test_intersect_touching(self):
        assert TimeInterval(0, 3).intersect(
            TimeInterval(3, 6)
        ) == TimeInterval.point(3)

    def test_shift_positive(self):
        assert TimeInterval(2, 5).shift(3) == TimeInterval(5, 8)

    def test_shift_clamps_at_zero(self):
        assert TimeInterval(1, 4).shift(-3) == TimeInterval(0, 1)

    def test_shift_unbounded(self):
        shifted = TimeInterval.unbounded(2).shift(5)
        assert shifted.eft == 7
        assert shifted.is_unbounded

    def test_iter_values(self):
        assert list(TimeInterval(2, 5).iter_values()) == [2, 3, 4, 5]

    def test_iter_values_unbounded_rejected(self):
        with pytest.raises(NetConstructionError):
            TimeInterval.unbounded(0).iter_values()


@st.composite
def intervals(draw):
    eft = draw(st.integers(min_value=0, max_value=500))
    width = draw(st.integers(min_value=0, max_value=500))
    return TimeInterval(eft, eft + width)


class TestProperties:
    @given(intervals())
    def test_contains_endpoints(self, interval):
        assert interval.contains(interval.eft)
        assert interval.contains(int(interval.lft))

    @given(intervals())
    def test_str_parse_roundtrip(self, interval):
        assert TimeInterval.parse(str(interval)) == interval

    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_intersection_is_subset(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert result.eft >= a.eft and result.eft >= b.eft
            assert result.lft <= a.lft and result.lft <= b.lft

    @given(intervals())
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a

    @given(intervals(), st.integers(min_value=-100, max_value=100))
    def test_shift_preserves_validity(self, interval, delta):
        shifted = interval.shift(delta)
        assert shifted.eft >= 0
        assert shifted.lft >= shifted.eft

    @given(intervals())
    def test_iter_values_matches_width(self, interval):
        values = list(interval.iter_values())
        assert len(values) == interval.width + 1
        assert all(interval.contains(v) for v in values)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_point_is_punctual(self, value):
        assert TimeInterval.point(value).is_punctual
