"""Tests for energy accounting and dispatcher-overhead tolerance."""

import pytest

from repro.analysis import (
    EnergyReport,
    energy_report,
    max_tolerable_overhead,
)
from repro.blocks import compose
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import SpecBuilder


@pytest.fixture
def energetic_bundle():
    spec = (
        SpecBuilder("power")
        .task("HOT", computation=4, deadline=10, period=20, energy=5)
        .task("COOL", computation=2, deadline=20, period=20, energy=1)
        .build()
    )
    model = compose(spec)
    schedule = schedule_from_result(model, find_schedule(model))
    return model, schedule


class TestEnergyReport:
    def test_per_task_energy(self, energetic_bundle):
        model, schedule = energetic_bundle
        result = energy_report(model, schedule)
        assert result.per_task == {"HOT": 20, "COOL": 2}
        assert result.busy_energy == 22
        assert result.idle_energy == 0
        assert result.total == 22

    def test_idle_power(self, energetic_bundle):
        model, schedule = energetic_bundle
        result = energy_report(model, schedule, idle_power=2)
        # PS=20, busy=6 -> 14 idle units at power 2
        assert result.idle_energy == 28
        assert result.total == 50

    def test_average_power(self, energetic_bundle):
        model, schedule = energetic_bundle
        result = energy_report(model, schedule)
        assert result.average_power == pytest.approx(22 / 20)

    def test_str(self, energetic_bundle):
        model, schedule = energetic_bundle
        text = str(energy_report(model, schedule))
        assert "HOT=20" in text and "avg power" in text

    def test_zero_period_guard(self):
        report = EnergyReport(
            per_task={}, busy_energy=0, idle_energy=0,
            schedule_period=0,
        )
        assert report.average_power == 0.0

    def test_energy_scales_with_instances(self):
        spec = (
            SpecBuilder("scale")
            .task("T", computation=1, deadline=5, period=5, energy=3)
            .task("BG", computation=1, deadline=20, period=20)
            .build()
        )
        model = compose(spec)
        schedule = schedule_from_result(model, find_schedule(model))
        result = energy_report(model, schedule)
        # 4 instances of T over PS=20, 1 unit each at power 3
        assert result.per_task["T"] == 12


class TestOverheadTolerance:
    def test_slack_free_schedule_tolerates_nothing(self):
        spec = (
            SpecBuilder("tight")
            .task("A", computation=5, deadline=5, period=10)
            .task("B", computation=5, deadline=10, period=10)
            .build()
        )
        model = compose(spec)
        schedule = schedule_from_result(model, find_schedule(model))
        assert max_tolerable_overhead(model, schedule) == 0

    def test_slack_rich_schedule_tolerates_some(self):
        spec = (
            SpecBuilder("loose")
            .task("A", computation=1, deadline=20, period=20)
            .build()
        )
        model = compose(spec)
        schedule = schedule_from_result(model, find_schedule(model))
        tolerance = max_tolerable_overhead(model, schedule, limit=30)
        assert tolerance >= 10  # one dispatch, 19 units of slack

    def test_limit_caps_search(self, energetic_bundle):
        model, schedule = energetic_bundle
        tolerance = max_tolerable_overhead(model, schedule, limit=2)
        assert 0 <= tolerance <= 2
