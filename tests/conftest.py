"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.blocks import ComposerOptions, compose
from repro.spec import (
    SpecBuilder,
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
)
from repro.tpn import TimeInterval, TimePetriNet


@pytest.fixture
def simple_net() -> TimePetriNet:
    """A tiny producer/consumer net with a resource place.

    ``t_start [2,4]`` takes the resource, ``t_end [3,3]`` returns it;
    the final marking is the drained state.
    """
    net = TimePetriNet("simple")
    net.add_place("p0", marking=1)
    net.add_place("proc", marking=1)
    net.add_place("p1")
    net.add_place("done")
    net.add_transition("t_start", TimeInterval(2, 4))
    net.add_transition("t_end", TimeInterval(3, 3))
    net.add_arc("p0", "t_start")
    net.add_arc("proc", "t_start")
    net.add_arc("t_start", "p1")
    net.add_arc("p1", "t_end")
    net.add_arc("t_end", "done")
    net.add_arc("t_end", "proc")
    net.set_final_marking({"done": 1, "proc": 1, "p0": 0, "p1": 0})
    return net


@pytest.fixture
def conflict_net() -> TimePetriNet:
    """Two transitions competing for one token (a free choice)."""
    net = TimePetriNet("conflict")
    net.add_place("p", marking=1)
    net.add_place("a")
    net.add_place("b")
    net.add_transition("t_a", TimeInterval(1, 5))
    net.add_transition("t_b", TimeInterval(2, 3))
    net.add_arc("p", "t_a")
    net.add_arc("p", "t_b")
    net.add_arc("t_a", "a")
    net.add_arc("t_b", "b")
    return net


@pytest.fixture
def two_task_spec():
    """A minimal schedulable two-task specification."""
    return (
        SpecBuilder("two-task")
        .processor("proc0")
        .task("A", computation=2, deadline=10, period=10)
        .task("B", computation=3, deadline=10, period=10)
        .build()
    )


@pytest.fixture
def mine_pump_spec():
    return mine_pump()


@pytest.fixture
def mine_pump_model(mine_pump_spec):
    return compose(mine_pump_spec)


@pytest.fixture
def fig3_model():
    return compose(fig3_precedence())


@pytest.fixture
def fig4_model():
    return compose(fig4_exclusion())


@pytest.fixture
def fig8_model():
    return compose(fig8_preemptive())


@pytest.fixture
def expanded_options():
    from repro.blocks import BlockStyle

    return ComposerOptions(style=BlockStyle.EXPANDED)
