"""The repro.obs observability layer (ISSUE 6).

Covers the recorder/sink/null-recorder contracts, the Chrome
trace-event exporter (JSONL → Perfetto-openable JSON, deterministic
structure under ``normalize=True``), the metrics registry and its
cross-process snapshot merging (including a real ``--parallel 2``
portfolio race), the progress heartbeat, the zero-elapsed throughput
guard, and the CLI ``--trace`` round trip.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import os

from repro.blocks import compose
from repro.obs import (
    NULL_RECORDER,
    JsonlSink,
    MetricsRegistry,
    NullRecorder,
    ProgressFile,
    ProgressPrinter,
    Recorder,
    chrome_trace,
    format_metrics,
    read_events,
    write_chrome_trace,
)
from repro.scheduler import SchedulerConfig, find_schedule
from repro.scheduler.result import SearchStats
from repro.spec import paper_examples


def _no_ezrt_children() -> bool:
    return not [
        child
        for child in multiprocessing.active_children()
        if child.name.startswith("ezrt-")
    ]


# ----------------------------------------------------------------------
# Recorder and sink
# ----------------------------------------------------------------------
class TestRecorder:
    def test_span_record(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path), track="t1")
        with recorder.span("compile", cat="compile", spec="fig3"):
            pass
        recorder.record_span("search", 10, 250, args={"n": 3})
        recorder.close()
        events = read_events(path)
        assert [e["name"] for e in events] == ["compile", "search"]
        span = events[0]
        assert span["type"] == "span"
        assert span["cat"] == "compile"
        assert span["args"] == {"spec": "fig3"}
        assert span["dur"] >= 0
        assert span["pid"] == os.getpid()
        assert span["track"] == "t1"
        assert events[1]["ts"] == 10 and events[1]["dur"] == 240

    def test_span_recorded_even_when_body_raises(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path))
        try:
            with recorder.span("boom"):
                raise RuntimeError("inside")
        except RuntimeError:
            pass
        assert [e["name"] for e in read_events(path)] == ["boom"]

    def test_negative_duration_clamped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path))
        recorder.record_span("clock-skew", 500, 100)
        assert read_events(path)[0]["dur"] == 0

    def test_instant_and_counter(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path), track="w0")
        recorder.instant("cancelled", reason="first-win")
        recorder.counter("progress", states=100, depth=7)
        kinds = {e["type"]: e for e in read_events(path)}
        assert kinds["instant"]["args"] == {"reason": "first-win"}
        assert kinds["counter"]["values"] == {
            "states": 100,
            "depth": 7,
        }

    def test_track_relabel_applies_to_later_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path), track="before")
        recorder.instant("a")
        recorder.track = "after"
        recorder.instant("b")
        assert [e["track"] for e in read_events(path)] == [
            "before",
            "after",
        ]

    def test_null_recorder_writes_nothing(self, tmp_path):
        path = str(tmp_path / "never-created.jsonl")
        null = NullRecorder()
        assert null.enabled is False
        with null.span("compile", spec="x"):
            pass
        null.record_span("a", 0, 1)
        null.instant("b")
        null.counter("c", n=1)
        null.close()
        assert not os.path.exists(path)
        assert NULL_RECORDER.now_ns() > 0

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = Recorder(JsonlSink(path))
        recorder.instant("whole")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "torn", "ts": 12')
        events = read_events(path)
        assert [e["name"] for e in events] == ["whole"]


# ----------------------------------------------------------------------
# Chrome trace exporter
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_empty(self):
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_normalized_structure(self):
        events = [
            {
                "type": "span",
                "name": "search",
                "cat": "search",
                "ts": 5_000_000,
                "dur": 2_000,
                "pid": 4242,
                "track": "search:incremental",
                "args": {},
            },
            {
                "type": "span",
                "name": "compile",
                "cat": "compile",
                "ts": 4_000_000,
                "dur": 1_000,
                "pid": 77,
                "track": "cli",
                "args": {},
            },
        ]
        doc = chrome_trace(events, normalize=True)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # pids renumbered 1..n by first-seen timestamp: pid 77 first
        assert [e["name"] for e in xs] == ["compile", "search"]
        assert xs[0]["pid"] == 1 and xs[1]["pid"] == 2
        # timestamps rebased to the earliest event, ns -> us
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == 1000.0
        assert xs[1]["dur"] == 2.0
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["name"], e["pid"], e["args"]["name"]) for e in metas
        }
        assert ("process_name", 1, "ezrt") in names
        assert ("thread_name", 1, "cli") in names
        assert ("thread_name", 2, "search:incremental") in names

    def test_instants_and_counters_mapped(self):
        events = [
            {
                "type": "instant",
                "name": "cancelled",
                "cat": "race",
                "ts": 10,
                "pid": 1,
                "track": "w0",
                "args": {"x": 1},
            },
            {
                "type": "counter",
                "name": "progress",
                "ts": 20,
                "pid": 1,
                "track": "w0",
                "values": {"states": 5},
            },
        ]
        doc = chrome_trace(events)
        by_ph = {e["ph"]: e for e in doc["traceEvents"]}
        assert by_ph["i"]["s"] == "t"
        assert by_ph["i"]["args"] == {"x": 1}
        assert by_ph["C"]["args"] == {"states": 5}

    def test_jsonl_round_trip(self, tmp_path):
        jsonl = str(tmp_path / "events.jsonl")
        out = str(tmp_path / "trace.json")
        recorder = Recorder(JsonlSink(jsonl), track="main")
        with recorder.span("compile", cat="compile"):
            pass
        recorder.counter("progress", states=1)
        written = write_chrome_trace(jsonl, out, normalize=True)
        assert written == out
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        phases = sorted(e["ph"] for e in doc["traceEvents"])
        assert phases == ["C", "M", "M", "X"]

    def test_search_trace_structure_is_deterministic(self, tmp_path):
        """Two traced runs of one model have identical span structure.

        Wall-clock timestamps differ run to run; the *structure* —
        which spans exist, on which tracks, in which per-track order —
        must not.  ``normalize=True`` makes the pid numbering
        comparable too.
        """
        model = compose(paper_examples()["fig4"])

        def structure(run: int):
            jsonl = str(tmp_path / f"run{run}.jsonl")
            result = find_schedule(
                model, SchedulerConfig(trace_jsonl=jsonl)
            )
            assert result.feasible
            doc = chrome_trace(
                read_events(jsonl), normalize=True
            )
            return [
                (e["ph"], e["pid"], e["tid"], e["name"], e["cat"])
                for e in doc["traceEvents"]
                if e["ph"] == "X"
            ], [
                (e["pid"], e["args"]["name"])
                for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"
            ]

        assert structure(1) == structure(2)

    def test_serial_trace_covers_the_pipeline(self, tmp_path):
        jsonl = str(tmp_path / "events.jsonl")
        model = compose(paper_examples()["fig4"])
        find_schedule(model, SchedulerConfig(trace_jsonl=jsonl))
        events = read_events(jsonl)
        names = {e["name"] for e in events}
        assert {
            "search",
            "successor-generation",
            "candidate-enumeration",
        } <= names
        search_span = next(e for e in events if e["name"] == "search")
        assert search_span["args"]["engine"] == "incremental"
        assert search_span["args"]["states_visited"] > 0
        # aggregate child spans nest inside the search span
        for child in (
            "successor-generation",
            "candidate-enumeration",
        ):
            span = next(e for e in events if e["name"] == child)
            assert span["args"]["aggregate"] is True
            assert span["args"]["calls"] > 0
            assert span["ts"] >= search_span["ts"]
            assert (
                span["ts"] + span["dur"]
                <= search_span["ts"] + search_span["dur"]
            )

    def test_stateclass_trace_has_concretisation_and_replay(
        self, tmp_path
    ):
        jsonl = str(tmp_path / "events.jsonl")
        model = compose(paper_examples()["fig4"])
        result = find_schedule(
            model,
            SchedulerConfig(engine="stateclass", trace_jsonl=jsonl),
        )
        assert result.feasible
        names = {e["name"] for e in read_events(jsonl)}
        assert {"concretisation", "reference-replay"} <= names


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("depth", 5)
        reg.set_gauge("depth", 3)  # last write wins locally
        reg.max_gauge("peak", 7)
        reg.max_gauge("peak", 4)  # never lowers
        reg.observe("lat", 1.0)
        reg.observe("lat", 3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"depth": 3, "peak": 7}
        assert snap["histograms"]["lat"] == {
            "count": 2,
            "sum": 4.0,
            "min": 1.0,
            "max": 3.0,
        }

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("n")
        snap = reg.snapshot()
        reg.inc("n")
        assert snap["counters"] == {"n": 1}

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.inc("cache.hits", 2)
        a.max_gauge("depth", 10)
        a.observe("secs", 1.0)
        b = MetricsRegistry()
        b.inc("cache.hits", 3)
        b.max_gauge("depth", 8)
        b.observe("secs", 5.0)
        merged = MetricsRegistry.merge_snapshots(
            [a.snapshot(), None, b.snapshot(), {}]
        )
        assert merged["counters"] == {"cache.hits": 5}  # sum
        assert merged["gauges"] == {"depth": 10}  # max
        assert merged["histograms"]["secs"] == {
            "count": 2,
            "sum": 6.0,
            "min": 1.0,
            "max": 5.0,
        }

    def test_format_metrics(self):
        reg = MetricsRegistry()
        reg.inc("worksteal.jobs_stolen", 4)
        reg.set_gauge("slot.earliest.wall_seconds", 0.25)
        reg.observe("job.seconds", 2.0)
        text = format_metrics(reg.snapshot())
        assert "counters:" in text
        assert "worksteal.jobs_stolen" in text
        assert "slot.earliest.wall_seconds" in text
        assert "count=1 mean=2" in text
        assert format_metrics({}) == "(no metrics recorded)"
        assert format_metrics(None) == "(no metrics recorded)"


# ----------------------------------------------------------------------
# Progress heartbeat
# ----------------------------------------------------------------------
class TestProgressPrinter:
    def test_rate_limited(self):
        stream = io.StringIO()
        printer = ProgressPrinter(
            label="x", interval=3600.0, stream=stream
        )
        printer(100, 200, 5)
        assert stream.getvalue() == ""
        assert printer.samples == 0

    def test_sample_prints_and_records(self, tmp_path):
        stream = io.StringIO()
        jsonl = str(tmp_path / "events.jsonl")
        metrics = MetricsRegistry()
        printer = ProgressPrinter(
            label="search:incremental",
            interval=0.0,
            stream=stream,
            recorder=Recorder(JsonlSink(jsonl)),
            metrics=metrics,
        )
        printer(1024, 2048, 9)
        line = stream.getvalue()
        assert line.startswith("[progress] search:incremental:")
        assert "1,024 states visited" in line
        assert "depth 9" in line
        counter = read_events(jsonl)[0]
        assert counter["type"] == "counter"
        assert counter["values"]["states"] == 1024
        assert counter["values"]["depth"] == 9
        assert metrics.snapshot()["counters"] == {
            "progress.samples": 1
        }

    def test_disabled_recorder_not_called(self):
        stream = io.StringIO()
        printer = ProgressPrinter(
            interval=0.0, stream=stream, recorder=NULL_RECORDER
        )
        printer(10, 20, 1)  # must not raise, NULL recorder skipped
        assert "[progress]" in stream.getvalue()


class TestProgressFile:
    def test_rate_limited(self, tmp_path):
        path = str(tmp_path / "progress.json")
        spool = ProgressFile(path, interval=3600.0)
        spool(100, 200, 5)
        assert not os.path.exists(path)
        assert spool.samples == 0

    def test_sample_spools_atomic_json(self, tmp_path):
        path = str(tmp_path / "progress.json")
        spool = ProgressFile(path, slot="kernel", interval=0.0)
        spool(1024, 2048, 9)
        with open(path, encoding="utf-8") as handle:
            sample = json.load(handle)
        assert sample == {
            "slot": "kernel",
            "states_visited": 1024,
            "states_generated": 2048,
            "states_per_sec": sample["states_per_sec"],
            "depth": 9,
        }
        assert sample["states_per_sec"] >= 0
        # no leftover temp file: the write went through os.replace
        assert os.listdir(tmp_path) == ["progress.json"]
        # a later sample overwrites, never appends
        spool(4096, 8192, 3)
        with open(path, encoding="utf-8") as handle:
            sample = json.load(handle)
        assert sample["states_visited"] == 4096
        assert sample["depth"] == 3
        assert spool.samples == 2

    def test_vanished_directory_never_raises(self, tmp_path):
        gone = tmp_path / "gone"
        gone.mkdir()
        spool = ProgressFile(str(gone / "p.json"), interval=0.0)
        gone.rmdir()  # spool dir torn down mid-search
        spool(10, 20, 1)  # best-effort: swallowed, search unharmed
        assert spool.samples == 1


# ----------------------------------------------------------------------
# Search metrics end to end
# ----------------------------------------------------------------------
class TestSearchMetrics:
    def test_serial_search_ships_a_snapshot(self):
        model = compose(paper_examples()["fig4"])
        result = find_schedule(model, SchedulerConfig())
        assert set(result.metrics) == {
            "counters",
            "gauges",
            "histograms",
        }

    def test_progress_run_samples_depth(self):
        # a heartbeat turns polling on, so the depth gauge is sampled
        model = compose(paper_examples()["mine-pump"])
        result = find_schedule(
            model, SchedulerConfig(progress=True)
        )
        assert result.feasible
        assert result.metrics["gauges"]["search.max_depth"] >= 1

    def test_portfolio_race_merges_worker_metrics(self, tmp_path):
        """--parallel 2: both workers' snapshots land on the result."""
        model = compose(paper_examples()["mine-pump"])
        jsonl = str(tmp_path / "events.jsonl")
        result = find_schedule(
            model,
            SchedulerConfig(
                parallel=2,
                portfolio=("earliest", "min-laxity"),
                trace_jsonl=jsonl,
            ),
        )
        assert result.feasible
        assert result.workers == 2
        gauges = result.metrics["gauges"]
        for slot in ("earliest", "min-laxity"):
            assert gauges[f"slot.{slot}.wall_seconds"] > 0
        counters = result.metrics["counters"]
        # every slot reports exactly one terminal outcome
        outcomes = [
            value
            for name, value in counters.items()
            if name.startswith("slot.")
            and name.split(".")[-1]
            in ("feasible", "infeasible", "cancelled", "error")
        ]
        assert sum(outcomes) == 2
        # one trace track per portfolio worker
        tracks = {
            e["track"]
            for e in read_events(jsonl)
            if e.get("track", "").startswith("w")
        }
        assert {"w0:earliest", "w1:min-laxity"} <= tracks
        assert _no_ezrt_children()

    def test_worksteal_metrics(self):
        model = compose(paper_examples()["mine-pump"])
        result = find_schedule(
            model,
            SchedulerConfig(parallel=2, parallel_mode="worksteal"),
        )
        assert result.feasible
        metrics = result.metrics
        assert metrics["gauges"]["worksteal.frontier_jobs"] >= 1
        assert metrics["counters"]["worksteal.jobs_stolen"] >= 1
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# Batch metrics: cache accounting from the cache's own counters
# ----------------------------------------------------------------------
class TestBatchMetrics:
    def test_cache_metrics_and_bytes_served(self):
        from repro.batch import BatchEngine, ResultCache
        from repro.spec import fig3_precedence, fig4_exclusion

        cache = ResultCache()
        engine = BatchEngine(max_workers=1, cache=cache)
        specs = [fig3_precedence(), fig4_exclusion()]
        first = engine.run(specs)
        assert first.stats.cache_bytes == 0
        metrics = first.stats.metrics
        assert metrics["counters"]["batch.cache.misses"] == 2
        assert metrics["counters"]["batch.jobs.total"] == 2
        assert "cache_bytes" in first.stats.as_dict()
        second = engine.run(specs)
        assert second.stats.cache_hits == 2
        assert second.stats.cache_bytes > 0
        assert (
            second.stats.metrics["counters"]["batch.cache.hits"] == 2
        )
        assert (
            second.stats.metrics["counters"][
                "batch.cache.bytes_served"
            ]
            == second.stats.cache_bytes
        )
        assert "byte(s) served from cache" in second.summary()
        assert "byte(s) served from cache" not in first.summary()

    def test_batch_trace_has_cache_lookup_span(self, tmp_path):
        from repro.batch import BatchEngine
        from repro.spec import fig3_precedence

        jsonl = str(tmp_path / "events.jsonl")
        engine = BatchEngine(
            max_workers=1,
            scheduler_config=SchedulerConfig(trace_jsonl=jsonl),
        )
        engine.run([fig3_precedence()])
        names = {e["name"] for e in read_events(jsonl)}
        assert {"batch-run", "cache-lookup", "compile"} <= names


# ----------------------------------------------------------------------
# Zero-elapsed guard and the profile metrics block
# ----------------------------------------------------------------------
class TestThroughputGuard:
    def test_states_per_second_zero_elapsed(self):
        stats = SearchStats(states_visited=100, elapsed_seconds=0.0)
        assert stats.states_per_second == 0.0
        assert stats.as_dict()["states_per_second"] == 0.0

    def test_states_per_second_negative_elapsed(self):
        stats = SearchStats(states_visited=10, elapsed_seconds=-1.0)
        assert stats.states_per_second == 0.0

    def test_profile_without_metrics(self):
        text = SearchStats(states_visited=5).profile()
        assert "metrics:" not in text
        assert "metrics:" not in SearchStats().profile({})

    def test_profile_appends_metrics_block(self):
        reg = MetricsRegistry()
        reg.max_gauge("search.max_depth", 42)
        text = SearchStats(states_visited=5).profile(reg.snapshot())
        assert "metrics:" in text
        assert "search.max_depth" in text
        assert "42" in text


# ----------------------------------------------------------------------
# CLI --trace round trip
# ----------------------------------------------------------------------
class TestCliTrace:
    def test_schedule_trace_writes_chrome_json(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "trace.json")
        code = main(["schedule", "@fig4", "--trace", out])
        assert code == 0
        captured = capsys.readouterr()
        assert "wrote Chrome trace to" in captured.out
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        names = {
            e["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert {"compile", "search"} <= names

    def test_progress_flag_streams_to_stderr(self, capsys):
        from repro.cli import main

        code = main(["batch", "@fig3", "--progress", "--jobs", "1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "[progress] batch: 1/1 job(s) executed" in captured.err
