"""Tests for :mod:`repro.lint` — the diagnostic model, both rule
packs, the seeded-violation fixture corpus and every fast-fail gate
(scheduler, batch engine, submission bridge, CLI)."""

import json
import os
import shutil
import subprocess
import textwrap

import pytest

from repro.batch.cache import ResultCache
from repro.batch.engine import (
    BatchEngine,
    Submission,
    SubmissionBridge,
    prelint_outcome,
)
from repro.batch.job import (
    STATUS_ERROR,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    BatchJob,
)
from repro.blocks.composer import compose
from repro.cli import main as cli_main
from repro.lint import (
    ERROR,
    WARNING,
    Diagnostic,
    LintReport,
    check_fixture_dir,
    config_diagnostics,
    dbm_bound_diagnostics,
    errors,
    fingerprint_drift,
    format_report,
    has_errors,
    infeasibility_diagnostics,
    lint_spec,
    lint_tree,
    net_diagnostics,
    presearch_diagnostics,
    token_cap_diagnostics,
    validation_diagnostics,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.coderules import (
    check_fixture,
    expected_codes,
    lint_source,
    virtual_path_of,
)
from repro.lint.diagnostics import allowed_codes_by_line
from repro.scheduler import SchedulerConfig
from repro.scheduler.dfs import find_schedule
from repro.spec import (
    SpecBuilder,
    dumps,
    fig3_precedence,
    fig4_exclusion,
    mine_pump,
)
from repro.spec.model import EzRTSpec, Task
from repro.tpn.dbm import MAX_BOUND
from repro.tpn.interval import INF, TimeInterval
from repro.tpn.kernel import MAX_TOKENS
from repro.tpn.net import TimePetriNet

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
SRC_ROOT = os.path.join(os.path.dirname(HERE), "src")


def overloaded_spec() -> EzRTSpec:
    """Valid but provably infeasible: U = 14/10 on one processor."""
    return (
        SpecBuilder("overloaded")
        .processor("proc0")
        .task("A", computation=7, deadline=10, period=10)
        .task("B", computation=7, deadline=10, period=10)
        .build()
    )


def tight_pair_spec() -> EzRTSpec:
    """Searched-infeasible: zero-laxity warnings only, U = 1.0."""
    return (
        SpecBuilder("tight-pair")
        .task("A", computation=5, deadline=5, period=10)
        .task("B", computation=5, deadline=5, period=10)
        .build()
    )


def broken_spec() -> EzRTSpec:
    """Validation-invalid (c > d), built without the builder's check."""
    return EzRTSpec(
        "broken", tasks=[Task("t0", computation=5, deadline=2, period=10)]
    )


def codes(diagnostics) -> list:
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# Diagnostic model
# ----------------------------------------------------------------------
class TestDiagnosticModel:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic("EZS999", "fatal", "boom")

    def test_location_prefers_element(self):
        d = Diagnostic("EZS101", ERROR, "m", element="task 'A'")
        assert d.location == "task 'A'"

    def test_location_file_line(self):
        d = Diagnostic("EZC101", ERROR, "m", file="a.py", line=7)
        assert d.location == "a.py:7"
        assert Diagnostic("EZC101", ERROR, "m", file="a.py").location == "a.py"
        assert Diagnostic("EZC101", ERROR, "m").location == "-"

    def test_format_includes_hint(self):
        d = Diagnostic(
            "EZS103", ERROR, "bad timing", hint="fix it", element="task 'A'"
        )
        assert d.format() == "EZS103 error task 'A': bad timing (fix it)"
        bare = Diagnostic("EZS103", ERROR, "bad timing")
        assert bare.format() == "EZS103 error -: bad timing"

    def test_to_dict_round_shape(self):
        d = Diagnostic("EZT203", WARNING, "cap", file="x.py", line=3)
        doc = d.to_dict()
        assert doc["code"] == "EZT203"
        assert doc["severity"] == "warning"
        assert doc["line"] == 3
        # JSON-serialisable as-is (service 422 payloads depend on it).
        json.dumps(doc)

    def test_errors_and_has_errors(self):
        warn = Diagnostic("EZS105", WARNING, "w")
        err = Diagnostic("EZS101", ERROR, "e")
        assert errors([warn]) == []
        assert not has_errors([warn])
        assert errors([warn, err]) == [err]
        assert has_errors([warn, err])

    def test_format_report_one_line_each(self):
        report = format_report(
            [Diagnostic("EZS101", ERROR, "a"), Diagnostic("EZS105", WARNING, "b")]
        )
        assert report.splitlines() == [
            "EZS101 error -: a",
            "EZS105 warning -: b",
        ]

    def test_allowed_codes_cover_directive_line_and_next(self):
        source = "x = 1\n# lint: allow EZC101 — because\ny = 2\nz = 3\n"
        allowed = allowed_codes_by_line(source)
        assert allowed[2] == {"EZC101"}
        assert allowed[3] == {"EZC101"}
        assert 4 not in allowed

    def test_lint_report_partitions(self):
        report = LintReport()
        assert report.clean
        report.extend(
            [Diagnostic("EZS101", ERROR, "e"), Diagnostic("EZS105", WARNING, "w")]
        )
        assert not report.clean
        assert codes(report.errors) == ["EZS101"]
        assert codes(report.warnings) == ["EZS105"]
        assert len(report.to_dicts()) == 2


# ----------------------------------------------------------------------
# Spec rules
# ----------------------------------------------------------------------
class TestSpecRules:
    def test_validation_diagnostics_carry_codes(self):
        diagnostics = validation_diagnostics(broken_spec())
        assert diagnostics
        assert all(d.severity == ERROR for d in diagnostics)
        assert "EZS103" in codes(diagnostics)

    def test_single_processor_overload_reported_once(self):
        diagnostics = infeasibility_diagnostics(overloaded_spec())
        overutil = [d for d in diagnostics if d.code == "EZS101"]
        assert len(overutil) == 1
        assert overutil[0].element == "processor 'proc0'"
        assert overutil[0].severity == ERROR

    def test_multiprocessor_global_overload(self):
        spec = (
            SpecBuilder("multi")
            .processor("proc0")
            .processor("proc1")
            .task("A", computation=9, deadline=10, period=10, processor="proc0")
            .task("B", computation=9, deadline=10, period=10, processor="proc1")
            .task("C", computation=9, deadline=10, period=10, processor="proc0")
            .build()
        )
        overutil = [
            d
            for d in infeasibility_diagnostics(spec)
            if d.code == "EZS101"
        ]
        # global (2.7 > 2 processors) plus the overloaded proc0 (1.8 > 1)
        elements = {d.element for d in overutil}
        assert "processor 'proc0'" in elements
        assert "spec 'multi'" in elements

    def test_bus_overutilization(self):
        spec = (
            SpecBuilder("bus-heavy")
            .processor("proc0")
            .processor("proc1")
            .task("A", computation=1, deadline=10, period=10, processor="proc0")
            .task("B", computation=2, deadline=10, period=10, processor="proc1")
            .task("C", computation=2, deadline=10, period=10, processor="proc1")
            .message("m0", sender="A", receiver="B", communication=6)
            .message("m1", sender="A", receiver="C", communication=6)
            .build()
        )
        diagnostics = infeasibility_diagnostics(spec)
        assert "EZS102" in codes(diagnostics)

    def test_precedence_chain_misses_deadline(self):
        spec = (
            SpecBuilder("chain")
            .task("A", computation=4, deadline=10, period=10)
            .task("B", computation=4, deadline=6, period=10)
            .precedence("A", "B")
            .build()
        )
        chain = [
            d for d in infeasibility_diagnostics(spec) if d.code == "EZS106"
        ]
        assert len(chain) == 1
        assert chain[0].element == "task 'B'"

    def test_message_delay_counts_toward_chain(self):
        spec = (
            SpecBuilder("msg-chain")
            .processor("proc0")
            .processor("proc1")
            .task("A", computation=2, deadline=10, period=10, processor="proc0")
            .task("B", computation=2, deadline=7, period=10, processor="proc1")
            .message("m", sender="A", receiver="B", communication=5)
            .build()
        )
        assert "EZS106" in codes(infeasibility_diagnostics(spec))

    def test_zero_laxity_is_warning_not_gate(self):
        diagnostics = infeasibility_diagnostics(tight_pair_spec())
        laxity = [d for d in diagnostics if d.code == "EZS105"]
        assert len(laxity) == 2
        assert all(d.severity == WARNING for d in laxity)
        assert not has_errors(diagnostics)

    def test_paper_examples_are_clean(self):
        for spec in (mine_pump(), fig3_precedence(), fig4_exclusion()):
            assert lint_spec(spec) == []

    def test_presearch_skips_invalid_specs(self):
        # An ill-formed spec is the composer's error to raise, not a
        # diagnosed infeasibility — the gate must stand aside.
        assert presearch_diagnostics(broken_spec()) == []

    def test_presearch_flags_valid_infeasible_spec(self):
        diagnostics = presearch_diagnostics(overloaded_spec())
        assert has_errors(diagnostics)
        assert "EZS101" in codes(diagnostics)

    def test_lint_spec_short_circuits_on_validation(self):
        diagnostics = lint_spec(broken_spec())
        assert diagnostics
        assert all(d.code.startswith("EZS1") for d in diagnostics)
        assert "EZS101" not in codes(diagnostics)


# ----------------------------------------------------------------------
# Net rules
# ----------------------------------------------------------------------
def structurally_dead_net() -> TimePetriNet:
    net = TimePetriNet("diag")
    net.add_place("p_src", marking=1)
    net.add_place("p_orphan")  # never in any postset -> unmarkable
    net.add_place("p_sink")
    net.add_transition("t_ok")
    net.add_arc("p_src", "t_ok")
    net.add_arc("t_ok", "p_sink")
    net.add_transition("t_dead")  # consumes only from the orphan
    net.add_arc("p_orphan", "t_dead")
    return net


class TestNetRules:
    def test_dead_transition_and_unmarkable_place(self):
        diagnostics = net_diagnostics(structurally_dead_net().compile())
        by_code = {d.code: d for d in diagnostics}
        assert by_code["EZT201"].severity == ERROR
        assert "t_dead" in by_code["EZT201"].element
        assert by_code["EZT202"].severity == WARNING
        assert "p_orphan" in by_code["EZT202"].element

    def test_live_net_is_clean(self):
        model = compose(fig3_precedence())
        assert net_diagnostics(model.net.compile()) == []

    def test_initial_marking_over_token_cap(self):
        net = TimePetriNet("fat")
        net.add_place("p0", marking=MAX_TOKENS + 1)
        net.add_place("p1")
        net.add_transition("t0")
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        compiled = net.compile()
        for_kernel = [
            d for d in net_diagnostics(compiled, engine="kernel")
            if d.code == "EZT203"
        ]
        assert for_kernel and for_kernel[0].severity == ERROR
        generic = [
            d for d in net_diagnostics(compiled) if d.code == "EZT203"
        ]
        assert generic and generic[0].severity == WARNING

    def test_spec_level_token_cap(self):
        # lcm(1, MAX_TOKENS + 2) instances of the fast task overflow a
        # uint16 instance counter; MAX_TOKENS + 2 is odd so the LCM is
        # the product.
        spec = EzRTSpec(
            "many",
            tasks=[
                Task("fast", computation=1, deadline=1, period=1),
                Task(
                    "slow",
                    computation=1,
                    deadline=MAX_TOKENS + 2,
                    period=MAX_TOKENS + 2,
                ),
            ],
        )
        diagnostics = token_cap_diagnostics(spec, engine="kernel")
        assert codes(diagnostics) == ["EZT203"]
        assert diagnostics[0].severity == WARNING
        assert "kernel" in diagnostics[0].message
        # presearch includes it only when targeting the kernel engine
        assert "EZT203" in codes(
            presearch_diagnostics(spec, engine="kernel")
        )
        assert "EZT203" not in codes(presearch_diagnostics(spec))

    def test_small_spec_has_no_token_cap_finding(self):
        assert token_cap_diagnostics(mine_pump(), engine="kernel") == []

    def test_net_interval_over_dbm_bound_cap(self):
        net = TimePetriNet("wide")
        net.add_place("p0", marking=1)
        net.add_place("p1")
        net.add_transition(
            "t0", interval=TimeInterval(0, MAX_BOUND + 1)
        )
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        compiled = net.compile()
        for_stateclass = [
            d for d in net_diagnostics(compiled, engine="stateclass")
            if d.code == "EZT204"
        ]
        assert for_stateclass
        assert for_stateclass[0].severity == ERROR
        assert "t0" in for_stateclass[0].element
        generic = [
            d for d in net_diagnostics(compiled) if d.code == "EZT204"
        ]
        assert generic and generic[0].severity == WARNING

    def test_net_unbounded_interval_checks_eft_only(self):
        # lft = INF is the DBM's sentinel, not a magnitude — only a
        # finite bound past the cap may fire the rule
        net = TimePetriNet("open")
        net.add_place("p0", marking=1)
        net.add_place("p1")
        net.add_transition("t0", interval=TimeInterval(1, INF))
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        diagnostics = [
            d
            for d in net_diagnostics(
                net.compile(), engine="stateclass"
            )
            if d.code == "EZT204"
        ]
        assert diagnostics == []

    def test_spec_level_dbm_bound_cap(self):
        spec = EzRTSpec(
            "wide",
            tasks=[
                Task(
                    "slow",
                    computation=1,
                    deadline=MAX_BOUND + 1,
                    period=MAX_BOUND + 1,
                )
            ],
        )
        diagnostics = dbm_bound_diagnostics(spec, engine="stateclass")
        assert codes(diagnostics) == ["EZT204"]
        assert diagnostics[0].severity == WARNING
        assert "state-class" in diagnostics[0].message
        # presearch includes it only when targeting the dense engine
        assert "EZT204" in codes(
            presearch_diagnostics(spec, engine="stateclass")
        )
        assert "EZT204" not in codes(presearch_diagnostics(spec))
        assert "EZT204" not in codes(
            presearch_diagnostics(spec, engine="kernel")
        )

    def test_coprime_periods_overflow_via_hyper_period(self):
        # every field is far below the cap, but the hyper-period
        # multiplies the co-prime periods past it
        p, q = 65537, 65539  # both prime; p * q > 2**30
        spec = EzRTSpec(
            "coprime",
            tasks=[
                Task("a", computation=1, deadline=p, period=p),
                Task("b", computation=1, deadline=q, period=q),
            ],
        )
        diagnostics = dbm_bound_diagnostics(spec)
        assert codes(diagnostics) == ["EZT204"]
        assert "hyper-period" in diagnostics[0].message

    def test_small_spec_has_no_dbm_bound_finding(self):
        assert (
            dbm_bound_diagnostics(mine_pump(), engine="stateclass")
            == []
        )


# ----------------------------------------------------------------------
# Config rules
# ----------------------------------------------------------------------
class TestConfigRules:
    def test_defaults_are_clean(self):
        assert config_diagnostics() == []
        assert config_diagnostics(engine="incremental") == []

    def test_unknown_engine(self):
        diagnostics = config_diagnostics(engine="quantum")
        assert codes(diagnostics) == ["EZG303"]
        assert diagnostics[0].severity == ERROR

    def test_unknown_delay_mode_and_parallel_mode(self):
        assert "EZG303" in codes(config_diagnostics(delay_mode="sometimes"))
        assert "EZG303" in codes(
            config_diagnostics(parallel=2, parallel_mode="magic")
        )

    def test_stateclass_requires_earliest_delay(self):
        diagnostics = config_diagnostics(
            engine="stateclass", delay_mode="extremes"
        )
        assert "EZG301" in codes(diagnostics)
        assert config_diagnostics(
            engine="stateclass", delay_mode="earliest"
        ) == []

    def test_worksteal_requires_incremental(self):
        diagnostics = config_diagnostics(
            engine="kernel", parallel=4, parallel_mode="worksteal"
        )
        assert "EZG302" in codes(diagnostics)
        assert config_diagnostics(
            engine="incremental", parallel=4, parallel_mode="worksteal"
        ) == []

    def test_lint_spec_passes_config_findings_through(self):
        diagnostics = lint_spec(mine_pump(), engine="quantum")
        assert "EZG303" in codes(diagnostics)


# ----------------------------------------------------------------------
# Code rules
# ----------------------------------------------------------------------
class TestCodeRules:
    def test_syntax_error_is_ezc100(self):
        diagnostics = lint_source("def broken(:\n", "repro/batch/x.py")
        assert codes(diagnostics) == ["EZC100"]

    def test_wall_clock_in_deterministic_module(self):
        source = "import time\nstamp = time.time()\n"
        diagnostics = lint_source(source, "repro/obs/sink.py")
        assert codes(diagnostics) == ["EZC101"]
        assert diagnostics[0].line == 2
        # the same call outside the deterministic prefixes is fine
        assert lint_source(source, "scripts/bench.py") == []

    def test_monotonic_clock_is_allowed(self):
        source = "import time\nt0 = time.monotonic()\n"
        assert lint_source(source, "repro/batch/engine.py") == []

    def test_aliased_wall_clock_import_caught(self):
        source = "from time import time as now\nstamp = now()\n"
        diagnostics = lint_source(source, "repro/spec/clock.py")
        assert codes(diagnostics) == ["EZC101"]

    def test_blocking_call_in_service_coroutine(self):
        source = textwrap.dedent(
            """
            import time

            async def handle(request):
                time.sleep(0.1)
            """
        )
        diagnostics = lint_source(source, "repro/service/handler.py")
        assert codes(diagnostics) == ["EZC102"]

    def test_blocking_call_outside_coroutine_ok(self):
        source = "def load(path):\n    return open(path).read()\n"
        assert lint_source(source, "repro/service/util.py") == []

    def test_blocking_coroutine_outside_service_ok(self):
        source = textwrap.dedent(
            """
            import time

            async def tick():
                time.sleep(1)
            """
        )
        assert lint_source(source, "repro/batch/x.py") == []

    def test_mutable_default_argument(self):
        source = "def collect(rows=[]):\n    return rows\n"
        diagnostics = lint_source(source, "anywhere.py")
        assert codes(diagnostics) == ["EZC103"]

    def test_allow_directive_suppresses_only_that_code(self):
        flagged = "import time\nstamp = time.time()\n"
        allowed = (
            "import time\n"
            "# lint: allow EZC101 — test fixture\n"
            "stamp = time.time()\n"
        )
        assert lint_source(flagged, "repro/obs/a.py") != []
        assert lint_source(allowed, "repro/obs/a.py") == []

    def test_fingerprint_drift_fixture_pair(self):
        diagnostics = fingerprint_drift(
            os.path.join(FIXTURES, "drift_config.py"),
            os.path.join(FIXTURES, "drift_cache.py"),
        )
        assert codes(diagnostics) == ["EZC104", "EZC104"]
        messages = " ".join(d.message for d in diagnostics)
        assert "policy" in messages
        assert "stale_knob" in messages
        assert all(
            d.file.endswith("drift_cache.py") for d in diagnostics
        )

    def test_repo_fingerprint_has_not_drifted(self):
        diagnostics = fingerprint_drift(
            os.path.join(SRC_ROOT, "repro", "scheduler", "config.py"),
            os.path.join(SRC_ROOT, "repro", "batch", "cache.py"),
        )
        assert diagnostics == []

    def test_virtual_path_is_rooted_at_repro(self):
        path = os.path.join(SRC_ROOT, "repro", "obs", "events.py")
        assert virtual_path_of(path, SRC_ROOT) == "repro/obs/events.py"

    def test_source_tree_is_self_clean(self):
        assert lint_tree(SRC_ROOT) == []


# ----------------------------------------------------------------------
# Fixture corpus
# ----------------------------------------------------------------------
class TestFixtureCorpus:
    def test_every_seeded_violation_fires(self):
        assert check_fixture_dir(FIXTURES) == []

    def test_expected_codes_parse_markers(self):
        path = os.path.join(FIXTURES, "mutable_defaults.py")
        with open(path, encoding="utf-8") as handle:
            marks = expected_codes(handle.read())
        assert marks
        assert all(code == "EZC103" for _, code in marks)

    def test_missing_violation_is_reported(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # expect: EZC103\n")
        problems = check_fixture(str(stale))
        assert problems
        assert "EZC103" in problems[0]

    def test_unexpected_violation_is_reported(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text("def f(rows=[]):\n    return rows\n")
        problems = check_fixture(str(rogue))
        assert problems
        assert "EZC103" in " ".join(problems)

    def test_empty_fixture_dir_fails_self_test(self, tmp_path):
        assert check_fixture_dir(str(tmp_path)) != []


# ----------------------------------------------------------------------
# Scheduler gate
# ----------------------------------------------------------------------
class TestSchedulerGate:
    def test_infeasible_spec_diagnosed_without_search(self):
        result = find_schedule(compose(overloaded_spec()))
        assert not result.feasible
        assert result.stats.states_visited == 0
        assert not result.exhausted
        assert "EZS101" in codes(result.diagnostics)
        assert "lint" in result.summary()
        assert "EZS101" in result.summary()

    def test_prelint_false_forces_the_search(self):
        result = find_schedule(compose(overloaded_spec()), prelint=False)
        assert not result.feasible
        assert result.stats.states_visited > 0
        assert result.diagnostics == []

    def test_warnings_attach_to_searched_results(self):
        result = find_schedule(compose(tight_pair_spec()))
        assert result.stats.states_visited > 0  # warnings never gate
        assert "EZS105" in codes(result.diagnostics)

    def test_feasible_specs_are_untouched(self):
        result = find_schedule(compose(fig3_precedence()))
        assert result.feasible
        assert result.diagnostics == []


# ----------------------------------------------------------------------
# Batch gate
# ----------------------------------------------------------------------
class TestBatchGate:
    def test_prelint_outcome_shapes(self):
        assert prelint_outcome(BatchJob(spec=fig3_precedence())) is None
        assert prelint_outcome(BatchJob(spec=broken_spec())) is None
        rejected = prelint_outcome(BatchJob(spec=overloaded_spec()))
        assert rejected is not None
        assert rejected.status == STATUS_INFEASIBLE
        assert rejected.diagnostics
        assert rejected.search == {}

    def test_run_rejects_without_computing(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        engine = BatchEngine(max_workers=1, cache=cache)
        result = engine.run([overloaded_spec(), fig3_precedence()])
        first, second = result.outcomes
        assert first.status == STATUS_INFEASIBLE
        assert first.search == {}
        assert [d["code"] for d in first.diagnostics] == ["EZS101"]
        assert second.status == STATUS_FEASIBLE
        assert result.stats.prelint_rejected == 1
        assert "trivially-infeasible" in result.summary()
        # diagnosed outcomes are never cached: a re-run re-diagnoses
        again = BatchEngine(max_workers=1, cache=cache).run(
            [overloaded_spec()]
        )
        assert again.stats.prelint_rejected == 1
        assert again.stats.cache_hits == 0

    def test_rejected_outcome_row_carries_diagnostics(self):
        rejected = prelint_outcome(BatchJob(spec=overloaded_spec()))
        row = rejected.row()
        assert row["diagnostics"][0]["code"] == "EZS101"
        json.dumps(row)

    def test_invalid_spec_still_errors(self):
        result = BatchEngine(max_workers=1).run([broken_spec()])
        assert result.outcomes[0].status == STATUS_ERROR
        assert result.stats.prelint_rejected == 0


# ----------------------------------------------------------------------
# Bridge gate
# ----------------------------------------------------------------------
class TestBridgeGate:
    def test_submission_rejected_before_the_pool(self):
        bridge = SubmissionBridge(BatchEngine(max_workers=1)).start()
        try:
            submission = bridge.submit(overloaded_spec())
            assert submission.disposition == Submission.REJECTED
            assert submission.future.done()
            outcome = submission.future.result()
            assert outcome.status == STATUS_INFEASIBLE
            assert outcome.diagnostics
            counters = bridge.metrics.snapshot()["counters"]
            assert counters["bridge.rejected"] == 1
            assert "bridge.computed" not in counters
        finally:
            bridge.shutdown()


# ----------------------------------------------------------------------
# ezrt lint CLI
# ----------------------------------------------------------------------
class TestLintCli:
    def test_clean_builtin(self, capsys):
        assert cli_main(["lint", "@mine-pump"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_infeasible_file_fails(self, tmp_path, capsys):
        path = tmp_path / "overloaded.xml"
        path.write_text(dumps(overloaded_spec()))
        assert cli_main(["lint", str(path)]) == 1
        assert "EZS101" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "overloaded.xml"
        path.write_text(dumps(overloaded_spec()))
        assert cli_main(["lint", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["spec"] == "overloaded"
        assert payload[0]["diagnostics"][0]["code"] == "EZS101"

    def test_config_incompatibility_fails(self, capsys):
        rc = cli_main(
            ["lint", "@fig3", "--engine", "stateclass", "--delay-mode", "extremes"]
        )
        assert rc == 1
        assert "EZG301" in capsys.readouterr().out

    def test_warnings_alone_keep_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "tight.xml"
        path.write_text(dumps(tight_pair_spec()))
        assert cli_main(["lint", str(path)]) == 0
        assert "EZS105" in capsys.readouterr().out


# ----------------------------------------------------------------------
# python -m repro.lint
# ----------------------------------------------------------------------
class TestTypeChecking:
    def test_lint_and_spec_packages_typecheck_strict(self):
        # CI installs mypy for its lint job; locally the container may
        # not have it — skip with a visible reason rather than fail.
        mypy = shutil.which("mypy")
        if mypy is None:
            pytest.skip("mypy is not installed in this environment")
        result = subprocess.run(
            [mypy, "--strict", "src/repro/lint", "src/repro/spec"],
            cwd=os.path.dirname(SRC_ROOT),
            env={**os.environ, "MYPYPATH": "src"},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, (
            f"mypy --strict failed:\n{result.stdout}\n{result.stderr}"
        )


class TestLintModuleMain:
    def test_self_lint_is_clean(self, capsys):
        assert lint_main(["--self", "--root", SRC_ROOT]) == 0
        assert "self-lint ok" in capsys.readouterr().out

    def test_fixture_self_test_passes(self, capsys):
        assert lint_main(["--self-test", FIXTURES]) == 0
        assert "fixture self-test ok" in capsys.readouterr().out

    def test_file_mode_reports_violations(self, capsys):
        path = os.path.join(FIXTURES, "mutable_defaults.py")
        assert lint_main([path]) == 1
        assert "EZC103" in capsys.readouterr().out

    def test_self_test_fails_on_empty_corpus(self, tmp_path, capsys):
        assert lint_main(["--self-test", str(tmp_path)]) == 1
