"""Tests of the TLTS state semantics (Definition 3.1, ET/FT/DLB/DUB)."""

import pytest

from repro.errors import SchedulingError
from repro.tpn import (
    DISABLED,
    INF,
    StateEngine,
    TimeInterval,
    TimePetriNet,
)


@pytest.fixture
def engine(simple_net):
    return StateEngine(simple_net.compile())


class TestInitialState:
    def test_clocks_zero_for_enabled(self, engine):
        s0 = engine.initial_state()
        assert s0.marking == (1, 1, 0, 0)
        assert s0.clocks == (0, DISABLED)

    def test_enabled_sets(self, engine):
        s0 = engine.initial_state()
        assert engine.enabled_transitions(s0.marking) == [0]
        assert engine.enabled_from_state(s0) == [0]


class TestBounds:
    def test_dlb_dub_initial(self, engine):
        s0 = engine.initial_state()
        assert engine.dlb(s0, 0) == 2
        assert engine.dub(s0, 0) == 4
        assert engine.min_dub(s0) == 4

    def test_bounds_of_disabled_raise(self, engine):
        s0 = engine.initial_state()
        with pytest.raises(SchedulingError):
            engine.dlb(s0, 1)
        with pytest.raises(SchedulingError):
            engine.dub(s0, 1)

    def test_dlb_clamps_at_zero(self, engine):
        s0 = engine.initial_state()
        s1 = engine.fire(s0, 0, 3)  # t_start at 3
        # t_end enabled, clock 0, interval [3,3]
        assert engine.dlb(s1, 1) == 3
        assert engine.dub(s1, 1) == 3

    def test_min_dub_ignores_unbounded(self):
        net = TimePetriNet("u")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("slow", TimeInterval.unbounded(1))
        net.add_transition("fast", TimeInterval(2, 6))
        net.add_arc("p", "slow")
        net.add_arc("slow", "r")
        net.add_arc("q", "fast")
        net.add_arc("fast", "r")
        engine = StateEngine(net.compile())
        assert engine.min_dub(engine.initial_state()) == 6

    def test_min_dub_all_unbounded_is_inf(self):
        net = TimePetriNet("u")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval.unbounded(0))
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        engine = StateEngine(net.compile())
        assert engine.min_dub(engine.initial_state()) == INF


class TestFireable:
    def test_single_candidate(self, engine):
        s0 = engine.initial_state()
        candidates = engine.fireable(s0)
        assert len(candidates) == 1
        assert candidates[0].transition == 0
        assert candidates[0].dlb == 2
        assert candidates[0].dub == 4

    def test_window_filter(self, conflict_net):
        # t_a [1,5] and t_b [2,3] conflict: ceiling is 3, both eligible
        engine = StateEngine(conflict_net.compile())
        candidates = engine.fireable(engine.initial_state())
        assert {c.transition for c in candidates} == {0, 1}
        assert all(c.dub == 3 for c in candidates)

    def test_window_excludes_late_starter(self):
        net = TimePetriNet("w")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("late", TimeInterval(9, 20))
        net.add_transition("soon", TimeInterval(0, 3))
        net.add_arc("p", "late")
        net.add_arc("late", "r")
        net.add_arc("q", "soon")
        net.add_arc("soon", "r")
        engine = StateEngine(net.compile())
        candidates = engine.fireable(engine.initial_state())
        names = {
            engine.net.transition_names[c.transition]
            for c in candidates
        }
        assert names == {"soon"}  # DLB(late)=9 > min DUB=3

    def test_priority_filter(self):
        net = TimePetriNet("prio")
        net.add_place("p", marking=1)
        net.add_place("a")
        net.add_place("b")
        net.add_transition("hi", TimeInterval(0, 5), priority=1)
        net.add_transition("lo", TimeInterval(0, 5), priority=9)
        net.add_arc("p", "hi")
        net.add_arc("p", "lo")
        net.add_arc("hi", "a")
        net.add_arc("lo", "b")
        engine = StateEngine(net.compile())
        s0 = engine.initial_state()
        filtered = engine.fireable(s0, priority_filter=True)
        assert [c.transition for c in filtered] == [
            engine.net.transition_index["hi"]
        ]
        unfiltered = engine.fireable(s0, priority_filter=False)
        assert len(unfiltered) == 2

    def test_firing_domain(self, engine):
        s0 = engine.initial_state()
        domain = engine.firing_domain(s0, 0)
        assert (domain.dlb, domain.dub) == (2, 4)
        assert list(domain.delays()) == [2, 3, 4]

    def test_unbounded_domain_not_enumerable(self):
        net = TimePetriNet("u")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval.unbounded(0))
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        engine = StateEngine(net.compile())
        domain = engine.firing_domain(engine.initial_state(), 0)
        with pytest.raises(SchedulingError):
            domain.delays()


class TestFire:
    def test_marking_update(self, engine):
        s0 = engine.initial_state()
        s1 = engine.fire(s0, 0, 2)
        assert s1.marking == (0, 0, 1, 0)

    def test_newly_enabled_clock_resets(self, engine):
        s0 = engine.initial_state()
        s1 = engine.fire(s0, 0, 4)
        assert s1.clocks[1] == 0  # t_end newly enabled

    def test_persistent_clock_advances(self):
        net = TimePetriNet("persist")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_place("s")
        net.add_transition("fast", TimeInterval(1, 2))
        net.add_transition("slow", TimeInterval(5, 9))
        net.add_arc("p", "fast")
        net.add_arc("fast", "r")
        net.add_arc("q", "slow")
        net.add_arc("slow", "s")
        engine = StateEngine(net.compile())
        s0 = engine.initial_state()
        s1 = engine.fire(s0, 0, 2)  # fire fast at 2
        slow = engine.net.transition_index["slow"]
        assert s1.clocks[slow] == 2  # persistent: advanced by q

    def test_fired_transition_clock_resets_on_self_loop(self):
        net = TimePetriNet("loop")
        net.add_place("budget", marking=3)
        net.add_place("out")
        net.add_transition("tick", TimeInterval(4, 4))
        net.add_arc("budget", "tick")
        net.add_arc("tick", "out")
        engine = StateEngine(net.compile())
        state = engine.initial_state()
        for _ in range(3):
            assert engine.dlb(state, 0) == 4
            state = engine.fire(state, 0, 4)
        # budget exhausted: disabled
        assert state.clocks[0] == DISABLED
        assert state.marking == (0, 3)

    def test_fire_disabled_raises(self, engine):
        s0 = engine.initial_state()
        with pytest.raises(SchedulingError):
            engine.fire(s0, 1, 0)

    def test_fire_below_dlb_raises(self, engine):
        s0 = engine.initial_state()
        with pytest.raises(SchedulingError):
            engine.fire(s0, 0, 1)

    def test_fire_beyond_ceiling_raises(self, engine):
        s0 = engine.initial_state()
        with pytest.raises(SchedulingError):
            engine.fire(s0, 0, 5)

    def test_strong_semantics_ceiling_from_other(self):
        # firing t_a later than DUB(t_b) must be rejected
        net = TimePetriNet("force")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("t_a", TimeInterval(0, 10))
        net.add_transition("t_b", TimeInterval(0, 2))
        net.add_arc("p", "t_a")
        net.add_arc("t_a", "r")
        net.add_arc("q", "t_b")
        net.add_arc("t_b", "r")
        engine = StateEngine(net.compile())
        s0 = engine.initial_state()
        with pytest.raises(SchedulingError):
            engine.fire(s0, 0, 3)
        engine.fire(s0, 0, 2)  # at the ceiling: fine


class TestResetPolicies:
    def _token_refill_net(self) -> TimePetriNet:
        """t_move consumes and refills t_watch's input place."""
        net = TimePetriNet("refill")
        net.add_place("shared", marking=1)
        net.add_place("fuel", marking=1)
        net.add_place("out")
        net.add_transition("t_watch", TimeInterval(5, 10))
        net.add_transition("t_move", TimeInterval(1, 1))
        net.add_arc("shared", "t_watch")
        net.add_arc("t_watch", "out")
        net.add_arc("fuel", "t_move")
        net.add_arc("shared", "t_move")
        net.add_arc("t_move", "shared")  # give the token right back
        net.add_arc("t_move", "out")
        return net

    def test_paper_semantics_keeps_clock(self):
        net = self._token_refill_net()
        engine = StateEngine(net.compile(), reset_policy="paper")
        s0 = engine.initial_state()
        s1 = engine.fire(s0, engine.net.transition_index["t_move"], 1)
        watch = engine.net.transition_index["t_watch"]
        # enabled before and after (marking comparison): persistent
        assert s1.clocks[watch] == 1

    def test_intermediate_semantics_resets_clock(self):
        net = self._token_refill_net()
        engine = StateEngine(net.compile(), reset_policy="intermediate")
        s0 = engine.initial_state()
        s1 = engine.fire(s0, engine.net.transition_index["t_move"], 1)
        watch = engine.net.transition_index["t_watch"]
        # t_move stole the token transiently: newly enabled
        assert s1.clocks[watch] == 0

    def test_unknown_policy_rejected(self, simple_net):
        with pytest.raises(SchedulingError):
            StateEngine(simple_net.compile(), reset_policy="bogus")
