"""Cross-validation suite for the dense-time state-class engine.

The state-class engine must be *verdict-equivalent* to the discrete
engines: for TPNs with integer bounds, integer firing times suffice
for reachability, so a dense search can never disagree with a
complete discrete one — and on the paper's work-conserving models it
cannot disagree with the default earliest-delay search either.  This
suite pins that equivalence on the paper models, a seeded task-set
sweep and a seeded raw-net sweep (zero-width intervals and immediate
transitions included), under both clock-reset policies, and checks
the concretisation/replay contract: every feasible dense schedule is
realised at integer times that the checked reference engine accepts.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.blocks import compose
from repro.scheduler import (
    ParallelScheduler,
    SchedulerConfig,
    dense_schedule_entries,
    find_schedule,
    format_dense_schedule,
    schedule_from_result,
)
from repro.scheduler.dfs import PreRuntimeScheduler, search
from repro.spec import fig3_precedence, fig4_exclusion, fig8_preemptive
from repro.tpn import (
    INF,
    StateClassEngine,
    StateEngine,
    TimeInterval,
    TimePetriNet,
    build_state_class_graph,
    explore,
    realize_firing_sequence,
)
from repro.workloads import random_task_set, wide_interval_job_net

RESETS = ("paper", "intermediate")


def _verdicts(model, reset_policy):
    dense = find_schedule(
        model,
        SchedulerConfig(engine="stateclass", reset_policy=reset_policy),
    )
    incremental = find_schedule(
        model, SchedulerConfig(reset_policy=reset_policy)
    )
    reference = find_schedule(
        model,
        SchedulerConfig(engine="reference", reset_policy=reset_policy),
    )
    return dense, incremental, reference


class TestPaperModelEquivalence:
    @pytest.mark.parametrize("reset", RESETS)
    @pytest.mark.parametrize(
        "factory", [fig3_precedence, fig4_exclusion, fig8_preemptive]
    )
    def test_verdict_matches_both_discrete_engines(self, factory, reset):
        model = compose(factory())
        dense, incremental, reference = _verdicts(model, reset)
        assert dense.feasible == incremental.feasible
        assert dense.feasible == reference.feasible

    @pytest.mark.parametrize(
        "factory", [fig3_precedence, fig4_exclusion, fig8_preemptive]
    )
    def test_dense_schedule_passes_independent_validation(self, factory):
        """Concretised schedules survive the spec-level re-check too."""
        model = compose(factory())
        dense = find_schedule(
            model, SchedulerConfig(engine="stateclass")
        )
        assert dense.feasible
        schedule_from_result(model, dense)  # raises on any violation


class TestRandomTaskSetSweep:
    @pytest.mark.parametrize("reset", RESETS)
    def test_verdict_parity_on_seeded_sweep(self, reset):
        for n_tasks in (2, 3):
            for utilization in (0.4, 0.8):
                for seed in (0, 1, 2):
                    spec = random_task_set(
                        n_tasks,
                        utilization,
                        seed=seed,
                        deadline_slack=0.8,
                    )
                    model = compose(spec)
                    dense, incremental, reference = _verdicts(
                        model, reset
                    )
                    assert not dense.exhausted
                    assert (
                        dense.feasible
                        == incremental.feasible
                        == reference.feasible
                    ), f"verdict diverged on {spec.name} ({reset})"


def _seeded_net(seed: int) -> TimePetriNet:
    """Small random TPN with zero-width and immediate transitions.

    All LFTs are finite so the complete discrete search
    (``delay_mode="full"``) can enumerate every integer delay — which
    makes dense/discrete verdict parity a theorem, not a coincidence.
    """
    rng = random.Random(seed)
    net = TimePetriNet(f"sweep-{seed}")
    n_places = rng.randint(3, 5)
    n_transitions = rng.randint(2, 4)
    for i in range(n_places):
        net.add_place(f"p{i}", marking=rng.randint(0, 1))
    for j in range(n_transitions):
        kind = rng.random()
        if kind < 0.25:
            interval = TimeInterval(0, 0)  # immediate
        elif kind < 0.5:
            point = rng.randint(1, 4)
            interval = TimeInterval(point, point)  # zero width
        else:
            eft = rng.randint(0, 3)
            interval = TimeInterval(eft, eft + rng.randint(1, 4))
        net.add_transition(f"t{j}", interval)
        for p in rng.sample(range(n_places), rng.randint(1, 2)):
            net.add_arc(f"p{p}", f"t{j}")
        for p in rng.sample(range(n_places), rng.randint(0, 2)):
            net.add_arc(f"t{j}", f"p{p}")
    return net


class TestRawNetSweep:
    @pytest.mark.parametrize("reset", RESETS)
    def test_markings_match_complete_discrete_exploration(self, reset):
        for seed in range(15):
            net = _seeded_net(seed).compile()
            dense = build_state_class_graph(
                net, max_classes=3000, reset_policy=reset
            )
            discrete = explore(
                net,
                max_states=20000,
                earliest_only=False,
                priority_filter=False,
                reset_policy=reset,
            )
            if dense.complete and discrete.complete:
                assert dense.markings() == discrete.markings(), (
                    f"marking sets diverged on seed {seed} ({reset})"
                )

    @pytest.mark.parametrize("reset", RESETS)
    def test_verdict_parity_against_complete_discrete_search(
        self, reset
    ):
        """Feasible and infeasible goals agree with delay_mode="full"."""
        checked = 0
        for seed in range(15):
            builder = _seeded_net(seed)
            compiled = builder.compile()
            discrete_graph = explore(
                compiled,
                max_states=20000,
                earliest_only=False,
                priority_filter=False,
                reset_policy=reset,
            )
            if not discrete_graph.complete:
                continue
            markings = sorted(discrete_graph.markings())
            # a reachable goal (the lexicographically last marking,
            # usually not the initial one) and an unreachable one
            goals = [(markings[-1], True), ((99,) * compiled.num_places, False)]
            for goal, expect_feasible in goals:
                target = dict(zip(builder.place_names, goal))
                builder.final_marking = {}
                try:
                    builder.set_final_marking(target)
                except Exception:  # noqa: BLE001 — unreachable sentinel
                    continue
                net = builder.compile()
                dense = search(
                    net,
                    SchedulerConfig(
                        engine="stateclass", reset_policy=reset
                    ),
                )
                full = search(
                    net,
                    SchedulerConfig(
                        delay_mode="full", reset_policy=reset
                    ),
                )
                assert not dense.exhausted and not full.exhausted
                assert dense.feasible == full.feasible == (
                    expect_feasible
                    if goal != net.m0
                    else dense.feasible
                ), f"verdict diverged on seed {seed} ({reset})"
                checked += 1
        assert checked >= 10  # the sweep must actually exercise nets


def _try_fire_full_closure(engine, cls, transition):
    """The pre-ISSUE-7 firing rule: full Floyd–Warshall closures.

    Adds the ``θ_t ≤ θ_u`` firing constraints explicitly, re-closes
    the constrained matrix from scratch, builds the successor from it
    and re-closes *that* from scratch — the two O(n³) steps the
    incremental rule in :meth:`StateClassEngine.try_fire` replaces.
    Kept here as the executable specification the fast path is
    checked against.
    """
    from repro.tpn.stateclass import StateClass, _canonical

    if transition not in cls.enabled:
        return None
    size = len(cls.enabled) + 1
    var_t = cls.enabled.index(transition) + 1
    matrix = [list(row) for row in cls.dbm]
    for var_u in range(1, size):
        if var_u != var_t and matrix[var_t][var_u] > 0:
            matrix[var_t][var_u] = 0  # θ_t − θ_u ≤ 0
    closed = _canonical(matrix)
    if closed is None:
        return None

    marking = list(cls.marking)
    for place, delta in engine.net.delta[transition]:
        marking[place] += delta
    new_marking = tuple(marking)

    old_enabled = cls.enabled
    new_enabled = tuple(engine._enabled(new_marking))
    persistent = engine._persistent(
        cls.marking, new_enabled, old_enabled, transition
    )
    new_size = len(new_enabled) + 1
    fresh = [[INF] * new_size for _ in range(new_size)]
    for i in range(new_size):
        fresh[i][i] = 0
    for new_var, t in enumerate(new_enabled, start=1):
        if t in persistent:
            old_var = old_enabled.index(t) + 1
            fresh[new_var][0] = closed[old_var][var_t]
            fresh[0][new_var] = closed[var_t][old_var]
        else:
            fresh[new_var][0] = engine.net.lft[t]
            fresh[0][new_var] = -engine.net.eft[t]
    for i_var, t_i in enumerate(new_enabled, start=1):
        if t_i not in persistent:
            continue
        old_i = old_enabled.index(t_i) + 1
        for j_var, t_j in enumerate(new_enabled, start=1):
            if t_j not in persistent or i_var == j_var:
                continue
            old_j = old_enabled.index(t_j) + 1
            fresh[i_var][j_var] = closed[old_i][old_j]
    reclosed = _canonical(fresh)
    if reclosed is None:
        return None
    return StateClass(
        new_marking,
        new_enabled,
        tuple(tuple(row) for row in reclosed),
    )


class TestIncrementalClosureEquivalence:
    """ISSUE 7 satellite: the O(n²) incremental DBM closure in
    :meth:`StateClassEngine.try_fire` against the full-closure
    specification, firing by firing — not just verdict parity but
    *matrix* equality, since the DBM is what later firability checks
    and windows read."""

    def _bfs_compare(self, net, reset, max_classes):
        engine = StateClassEngine(net, reset_policy=reset)
        initial = engine.initial_class()
        seen = {initial}
        frontier = [initial]
        firings = 0
        while frontier and len(seen) < max_classes:
            cls = frontier.pop()
            for t in range(net.num_transitions):
                fast = engine.try_fire(cls, t)
                full = _try_fire_full_closure(engine, cls, t)
                assert fast == full, (
                    f"incremental closure diverged firing "
                    f"{net.transition_names[t]!r} ({reset})"
                )
                if fast is None:
                    continue
                firings += 1
                if fast not in seen:
                    seen.add(fast)
                    frontier.append(fast)
        return firings

    @pytest.mark.parametrize("reset", RESETS)
    def test_paper_models_fire_identically(self, reset):
        from repro.spec import paper_examples

        for name, spec in paper_examples().items():
            net = compose(spec).compiled()
            assert self._bfs_compare(net, reset, max_classes=400) > 0, name

    @pytest.mark.parametrize("reset", RESETS)
    def test_seeded_nets_fire_identically(self, reset):
        """Raw seeded nets: zero-width and immediate intervals, token
        recirculation — the shapes that stress persistence and the
        projection argument."""
        firings = 0
        for seed in range(8):
            net = _seeded_net(seed).compile()
            firings += self._bfs_compare(net, reset, max_classes=200)
        assert firings >= 200  # the sweep must actually fire a lot

    @pytest.mark.parametrize("reset", RESETS)
    def test_seeded_task_sets_fire_identically(self, reset):
        for n, u, seed in ((2, 0.6, 3), (3, 0.5, 4), (4, 0.7, 5)):
            net = compose(
                random_task_set(
                    n, total_utilization=u, seed=seed,
                    deadline_slack=0.8,
                )
            ).compiled()
            assert self._bfs_compare(net, reset, max_classes=150) > 0


class TestIntervalSchedule:
    def test_windows_cover_concrete_times(self):
        net = wide_interval_job_net(feasible=True).compile()
        result = search(net, SchedulerConfig(engine="stateclass"))
        assert result.feasible
        entries = dense_schedule_entries(result)
        assert len(entries) == result.schedule_length
        for entry in entries:
            assert entry.earliest <= entry.at
            assert entry.at <= entry.latest
            # the engine concretises to the least solution
            assert entry.at == entry.earliest
        # a wide release window must survive into at least one entry
        assert any(entry.width > 0 for entry in entries)

    def test_discrete_results_carry_no_windows(self, fig3_model):
        result = find_schedule(fig3_model, SchedulerConfig())
        assert result.interval_schedule is None
        with pytest.raises(SchedulingError):
            dense_schedule_entries(result)

    def test_format_dense_schedule(self):
        net = wide_interval_job_net(feasible=True).compile()
        result = search(net, SchedulerConfig(engine="stateclass"))
        text = format_dense_schedule(
            dense_schedule_entries(result), limit=2
        )
        assert "dense window" in text
        assert "more firing(s)" in text


class TestRealizeFiringSequence:
    def test_correlated_bounds_need_the_repair_pass(self):
        """Greedy-earliest alone cannot time this sequence.

        ``t1 ∈ [0,10]`` enables ``u ∈ [0,5]``; ``t2 ∈ [7,20]`` runs
        from the start.  Firing order (t1, t2, u) forces
        ``τ(t1) ≥ 2``: t2 needs ``τ ≥ 7`` while u caps the run at
        ``τ(t1) + 5`` — the solver must delay the *enabling* firing.
        """
        net = TimePetriNet("repair")
        for name, marking in (
            ("p0", 1), ("p1", 1), ("pu", 0), ("a", 0), ("b", 0), ("c", 0)
        ):
            net.add_place(name, marking=marking)
        net.add_transition("t1", TimeInterval(0, 10))
        net.add_transition("t2", TimeInterval(7, 20))
        net.add_transition("u", TimeInterval(0, 5))
        net.add_arc("p0", "t1")
        net.add_arc("t1", "pu")
        net.add_arc("t1", "a")
        net.add_arc("p1", "t2")
        net.add_arc("t2", "b")
        net.add_arc("pu", "u")
        net.add_arc("u", "c")
        compiled = net.compile()
        realized = realize_firing_sequence(compiled, [0, 1, 2])
        assert realized.schedule == [
            ("t1", 2, 2),
            ("t2", 5, 7),
            ("u", 0, 7),
        ]
        # and the reference engine accepts the produced timing
        engine = StateEngine(compiled)
        state = engine.initial_state()
        for name, delay, _at in realized.schedule:
            state = engine.fire(
                state, compiled.transition_index[name], delay
            )

    def test_disabled_firing_raises(self, simple_net):
        compiled = simple_net.compile()
        with pytest.raises(SchedulingError):
            realize_firing_sequence(compiled, [1])  # t_end not enabled

    def test_windows_are_inf_when_nothing_forces(self):
        net = TimePetriNet("unforced")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval.unbounded(2))
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        compiled = net.compile()
        realized = realize_firing_sequence(compiled, [0])
        assert realized.schedule == [("t", 2, 2)]
        assert realized.windows == [("t", 2, INF)]


class TestStateClassEngineInternals:
    def test_cheap_firable_matches_closure_check(self):
        """Column-scan firability == add-constraints-and-close."""
        from repro.tpn.stateclass import _canonical

        def firable_by_closure(cls, transition):
            # the pre-PR formulation: add θ_t ≤ θ_u for every other
            # enabled u and re-run the full Floyd-Warshall closure
            size = len(cls.enabled) + 1
            var_t = cls.enabled.index(transition) + 1
            matrix = [list(row) for row in cls.dbm]
            for var_u in range(1, size):
                if var_u != var_t and matrix[var_t][var_u] > 0:
                    matrix[var_t][var_u] = 0
            return _canonical(matrix) is not None

        for seed in range(10):
            net = _seeded_net(seed).compile()
            engine = StateClassEngine(net)
            frontier = [engine.initial_class()]
            seen = set(frontier)
            budget = 200
            while frontier and budget:
                cls = frontier.pop()
                budget -= 1
                cheap = set(engine.firable(cls))
                closure = {
                    t
                    for t in cls.enabled
                    if firable_by_closure(cls, t)
                }
                assert cheap == closure
                for t in cheap:
                    child = engine.try_fire(cls, t)
                    if child is not None and child not in seen:
                        seen.add(child)
                        frontier.append(child)

    def test_fire_window_respects_other_lfts(self):
        net = TimePetriNet("window")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("slow", TimeInterval(0, 9))
        net.add_transition("fast", TimeInterval(0, 3))
        net.add_arc("p", "slow")
        net.add_arc("slow", "r")
        net.add_arc("q", "fast")
        net.add_arc("fast", "r")
        compiled = net.compile()
        engine = StateClassEngine(compiled)
        initial = engine.initial_class()
        slow = compiled.transition_index["slow"]
        fast = compiled.transition_index["fast"]
        # slow's own bounds are [0, 9] but fast caps the window at 3
        assert initial.bounds_of(slow) == (0, 9)
        assert engine.fire_window(initial, slow) == (0, 3)
        assert engine.fire_window(initial, fast) == (0, 3)

    def test_unfirable_window_is_none(self):
        net = TimePetriNet("blocked")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("late", TimeInterval(9, 20))
        net.add_transition("early", TimeInterval(0, 3))
        net.add_arc("p", "late")
        net.add_arc("late", "r")
        net.add_arc("q", "early")
        net.add_arc("early", "r")
        compiled = net.compile()
        engine = StateClassEngine(compiled)
        initial = engine.initial_class()
        late = compiled.transition_index["late"]
        assert engine.fire_window(initial, late) is None
        assert engine.fire_window(initial, 99) is None

    def test_inf_bounds_survive_closure(self):
        """INF entries stay INF — no NaN, no spurious finite bound."""
        net = TimePetriNet("inf")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_place("s")
        net.add_transition("never", TimeInterval.unbounded(1))
        net.add_transition("timed", TimeInterval(2, 5))
        net.add_arc("p", "never")
        net.add_arc("never", "r")
        net.add_arc("q", "timed")
        net.add_arc("timed", "s")
        compiled = net.compile()
        engine = StateClassEngine(compiled)
        initial = engine.initial_class()
        never = compiled.transition_index["never"]
        lower, upper = initial.bounds_of(never)
        assert (lower, upper) == (1, INF)
        for row in initial.dbm:
            for entry in row:
                assert entry == INF or (
                    isinstance(entry, int)
                    or float(entry).is_integer()
                ), f"non-integer finite bound {entry!r}"
                assert entry == entry, "NaN leaked into the DBM"
        # firing the timed transition keeps the unbounded one clean
        timed = compiled.transition_index["timed"]
        child = engine.fire(initial, timed)
        assert child.bounds_of(never)[1] == INF

    def test_reset_policy_changes_persistence(self):
        """A self-loop refill resets clocks only under 'intermediate'."""
        net = TimePetriNet("selfloop")
        net.add_place("shared", marking=1)
        net.add_place("out")
        net.add_place("done")
        # `loop` consumes and reproduces the shared token
        net.add_transition("loop", TimeInterval(1, 2))
        net.add_transition("other", TimeInterval(4, 6))
        net.add_arc("shared", "loop")
        net.add_arc("loop", "shared")
        net.add_arc("loop", "out")
        net.add_arc("shared", "other")
        net.add_arc("other", "done")
        compiled = net.compile()
        other = compiled.transition_index["other"]
        loop = compiled.transition_index["loop"]

        paper = StateClassEngine(compiled, reset_policy="paper")
        child = paper.fire(paper.initial_class(), loop)
        # paper policy: `other` persists (enabled before and after);
        # after `loop` fired within [1,2], its bounds shift
        assert child.bounds_of(other)[1] == 5  # 6 − 1

        inter = StateClassEngine(compiled, reset_policy="intermediate")
        child = inter.fire(inter.initial_class(), loop)
        # intermediate policy: the shared token transiently vanishes,
        # so `other` is newly enabled with its static interval
        assert child.bounds_of(other) == (4, 6)


class TestEngineConfiguration:
    def test_unknown_engine_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(engine="dbm")

    def test_stateclass_rejects_delay_enumeration(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(engine="stateclass", delay_mode="full")
        with pytest.raises(SchedulingError):
            SchedulerConfig(engine="stateclass", delay_mode="extremes")

    def test_worksteal_requires_incremental(self, fig3_model):
        with pytest.raises(SchedulingError):
            SchedulerConfig(
                engine="stateclass",
                parallel=2,
                parallel_mode="worksteal",
            )
        with pytest.raises(SchedulingError):
            ParallelScheduler(
                fig3_model.compiled(),
                SchedulerConfig(parallel=2, parallel_mode="worksteal"),
                engine="stateclass",
            )

    def test_scheduler_reads_engine_from_config(self, fig3_model):
        net = fig3_model.compiled()
        scheduler = PreRuntimeScheduler(
            net, SchedulerConfig(engine="stateclass")
        )
        assert scheduler.engine_mode == "stateclass"
        # an explicit argument overrides the config for the call
        scheduler = PreRuntimeScheduler(
            net,
            SchedulerConfig(engine="stateclass"),
            engine="incremental",
        )
        assert scheduler.engine_mode == "incremental"

    def test_stateclass_search_from_rejected(self, fig3_model):
        scheduler = PreRuntimeScheduler(
            fig3_model.compiled(), SchedulerConfig(engine="stateclass")
        )
        with pytest.raises(SchedulingError):
            scheduler.search_from(None, 0)


class TestSearchHooks:
    def test_budget_exhaustion_reports_exhausted(self):
        net = wide_interval_job_net(
            n_jobs=3, width=6, feasible=False
        ).compile()
        result = search(
            net, SchedulerConfig(engine="stateclass", max_states=10)
        )
        assert not result.feasible
        assert result.exhausted

    def test_tick_hook_cancels_the_search(self):
        # 5 jobs generate >2k expansions, so the 1024-expansion tick
        # boundary is crossed and the cancellation must abort the
        # (otherwise fully explorable) refutation as `exhausted`
        net = wide_interval_job_net(
            n_jobs=5, width=4, feasible=False
        ).compile()
        scheduler = PreRuntimeScheduler(
            net, SchedulerConfig(engine="stateclass")
        )
        ticks = []

        def tick(*counters):
            ticks.append(counters)
            return True

        scheduler.tick = tick
        result = scheduler.search()
        assert not result.feasible
        assert result.exhausted
        assert len(ticks) == 1

    @pytest.mark.parametrize(
        "policy", ["latest", "min-laxity", "random"]
    )
    def test_reorder_policies_keep_the_verdict(self, policy):
        model = compose(fig3_precedence())
        default = find_schedule(
            model, SchedulerConfig(engine="stateclass")
        )
        reordered = find_schedule(
            model,
            SchedulerConfig(
                engine="stateclass", policy=policy, policy_seed=3
            ),
        )
        assert reordered.feasible == default.feasible
        # the reordered schedule still replayed through the checked
        # engine (the search would have raised otherwise) and extracts
        schedule_from_result(model, reordered)

    def test_portfolio_race_accepts_stateclass(self):
        model = compose(fig3_precedence())
        result = find_schedule(
            model,
            SchedulerConfig(engine="stateclass", parallel=2),
        )
        assert result.feasible
        assert result.workers == 2
        # the winner's dense windows survive the worker handoff
        assert result.interval_schedule is not None
        assert len(result.interval_schedule) == result.schedule_length
        entries = dense_schedule_entries(result)
        assert all(e.earliest <= e.at <= e.latest for e in entries)
