"""Tests for schedule extraction, Fig. 8 items and validation."""

import pytest

from repro.blocks import compose
from repro.errors import SchedulingError
from repro.scheduler import (
    ExecutionSegment,
    SchedulerResult,
    TaskLevelSchedule,
    extract_schedule,
    find_schedule,
    schedule_from_result,
    validate_schedule,
)
from repro.spec import SpecBuilder, fig8_preemptive


@pytest.fixture
def fig8_schedule(fig8_model):
    result = find_schedule(fig8_model)
    return schedule_from_result(fig8_model, result)


class TestExtraction:
    def test_np_segments_one_per_instance(self, two_task_spec):
        model = compose(two_task_spec)
        schedule = schedule_from_result(model, find_schedule(model))
        assert len(schedule.segments_of("A")) == 1
        assert len(schedule.segments_of("B")) == 1
        assert schedule.segments_of("A", 1)[0].duration == 2

    def test_preemptive_segments_merge_units(self, fig8_schedule):
        # TaskC runs its two units contiguously: one segment
        c_segments = fig8_schedule.segments_of("TaskC", 1)
        assert len(c_segments) == 1
        assert c_segments[0].duration == 2

    def test_preempted_instance_splits(self, fig8_schedule):
        b_segments = fig8_schedule.segments_of("TaskB", 1)
        assert len(b_segments) == 3  # preempted twice
        assert sum(s.duration for s in b_segments) == 6

    def test_infeasible_result_rejected(self, fig8_model):
        bogus = SchedulerResult(feasible=False)
        with pytest.raises(SchedulingError):
            extract_schedule(fig8_model, bogus)

    def test_busy_and_idle_time(self, fig8_schedule, fig8_model):
        total_work = sum(
            t.computation * fig8_model.instances[t.name]
            for t in fig8_model.spec.tasks
        )
        assert fig8_schedule.busy_time() == total_work
        assert (
            fig8_schedule.idle_time()
            == fig8_model.schedule_period - total_work
        )

    def test_response_times(self, fig8_schedule, fig8_model):
        responses = fig8_schedule.response_times(fig8_model)
        for task in fig8_model.spec.tasks:
            assert responses[task.name] <= task.deadline


class TestScheduleItems:
    def test_flags_match_resumes(self, fig8_schedule):
        for item in fig8_schedule.items:
            assert item.preempted == ("resumes" in item.comment)

    def test_first_item_starts(self, fig8_schedule):
        assert fig8_schedule.items[0].comment.endswith("starts")
        assert not fig8_schedule.items[0].preempted

    def test_items_sorted(self, fig8_schedule):
        starts = [item.start for item in fig8_schedule.items]
        assert starts == sorted(starts)

    def test_preempts_comments_name_victim(self, fig8_schedule):
        preempts = [
            item
            for item in fig8_schedule.items
            if "preempts" in item.comment
        ]
        assert preempts, "fig8 must contain preemptions"
        for item in preempts:
            words = item.comment.split()
            assert words[0] == f"{item.task}{item.instance}"
            assert words[1] == "preempts"

    def test_task_ids_are_spec_order(self, fig8_schedule, fig8_model):
        expected = {
            t.name: i + 1
            for i, t in enumerate(fig8_model.spec.tasks)
        }
        for item in fig8_schedule.items:
            assert item.task_id == expected[item.task]

    def test_fig8_shape(self, fig8_schedule):
        """The paper's table shape: two instances of A/B/C, one of D,
        with preempted resumes flagged true."""
        items = fig8_schedule.items
        per_task_instances = {}
        for item in items:
            key = (item.task, item.instance)
            per_task_instances.setdefault(item.task, set()).add(
                item.instance
            )
        assert per_task_instances["TaskA"] == {1, 2}
        assert per_task_instances["TaskB"] == {1, 2}
        assert per_task_instances["TaskC"] == {1, 2}
        assert per_task_instances["TaskD"] == {1}
        assert any(item.preempted for item in items)


class TestValidation:
    def test_valid_schedule_passes(self, fig8_model, fig8_schedule):
        assert validate_schedule(fig8_model, fig8_schedule) == []

    def _schedule(self, model, segments):
        return TaskLevelSchedule(
            segments=segments,
            items=[],
            schedule_period=model.schedule_period,
        )

    def test_detects_missing_instance(self, two_task_spec):
        model = compose(two_task_spec)
        violations = validate_schedule(
            model,
            self._schedule(
                model, [ExecutionSegment("A", 1, 0, 2)]
            ),
        )
        assert any("never executed" in v for v in violations)

    def test_detects_wrong_wcet(self, two_task_spec):
        model = compose(two_task_spec)
        segments = [
            ExecutionSegment("A", 1, 0, 1),  # should be 2 units
            ExecutionSegment("B", 1, 1, 4),
        ]
        violations = validate_schedule(
            model, self._schedule(model, segments)
        )
        assert any("WCET" in v for v in violations)

    def test_detects_deadline_miss(self, two_task_spec):
        model = compose(two_task_spec)
        segments = [
            ExecutionSegment("A", 1, 9, 11),  # deadline is 10
            ExecutionSegment("B", 1, 0, 3),
        ]
        violations = validate_schedule(
            model, self._schedule(model, segments)
        )
        assert any("after deadline" in v for v in violations)

    def test_detects_early_start(self):
        spec = (
            SpecBuilder("r")
            .task("A", computation=2, deadline=10, period=10,
                  release=3)
            .build()
        )
        model = compose(spec)
        segments = [ExecutionSegment("A", 1, 0, 2)]
        violations = validate_schedule(
            model, self._schedule(model, segments)
        )
        assert any("before release" in v for v in violations)

    def test_detects_np_split(self, two_task_spec):
        model = compose(two_task_spec)
        segments = [
            ExecutionSegment("A", 1, 0, 1),
            ExecutionSegment("A", 1, 5, 6),
            ExecutionSegment("B", 1, 1, 4),
        ]
        violations = validate_schedule(
            model, self._schedule(model, segments)
        )
        assert any("non-preemptive" in v for v in violations)

    def test_detects_processor_overlap(self, two_task_spec):
        model = compose(two_task_spec)
        segments = [
            ExecutionSegment("A", 1, 0, 2),
            ExecutionSegment("B", 1, 1, 4),
        ]
        violations = validate_schedule(
            model, self._schedule(model, segments)
        )
        assert any("overlaps" in v for v in violations)

    def test_detects_precedence_violation(self):
        spec = (
            SpecBuilder("p")
            .task("A", computation=2, deadline=10, period=10)
            .task("B", computation=2, deadline=10, period=10)
            .precedence("A", "B")
            .build()
        )
        model = compose(spec)
        segments = [
            ExecutionSegment("B", 1, 0, 2),
            ExecutionSegment("A", 1, 2, 4),
        ]
        violations = validate_schedule(
            model,
            TaskLevelSchedule(
                segments=segments,
                items=[],
                schedule_period=model.schedule_period,
            ),
        )
        assert any("precedence" in v for v in violations)

    def test_detects_exclusion_interleaving(self):
        spec = (
            SpecBuilder("e")
            .task("A", computation=4, deadline=20, period=20,
                  scheduling="P")
            .task("B", computation=4, deadline=20, period=20,
                  scheduling="P")
            .exclusion("A", "B")
            .build()
        )
        model = compose(spec)
        segments = [
            ExecutionSegment("A", 1, 0, 2),
            ExecutionSegment("B", 1, 2, 6),  # inside A's envelope
            ExecutionSegment("A", 1, 6, 8),
        ]
        violations = validate_schedule(
            model,
            TaskLevelSchedule(
                segments=segments,
                items=[],
                schedule_period=model.schedule_period,
            ),
        )
        assert any("exclusion" in v for v in violations)

    def test_schedule_from_result_raises_on_violation(self, fig8_model):
        result = find_schedule(fig8_model)
        # sabotage the firing schedule: drop a grant firing
        result.firing_schedule = [
            f
            for f in result.firing_schedule
            if f[0] != "tg_TaskD"
        ]
        with pytest.raises(SchedulingError):
            schedule_from_result(fig8_model, result)


class TestMessageExtraction:
    def test_bus_segments(self):
        spec = (
            SpecBuilder("msg")
            .task("S", computation=1, deadline=10, period=10)
            .task("R", computation=2, deadline=10, period=10)
            .message("m", sender="S", receiver="R", communication=2,
                     grant_bus=1)
            .build()
        )
        model = compose(spec)
        schedule = schedule_from_result(model, find_schedule(model))
        assert len(schedule.bus_segments) == 1
        transfer = schedule.bus_segments[0]
        sender_end = schedule.segments_of("S", 1)[0].end
        receiver_start = schedule.segments_of("R", 1)[0].start
        assert transfer.start >= sender_end
        assert receiver_start >= transfer.end
        assert transfer.end - transfer.start == 2
