"""Tests for specification validation rules."""

import pytest

from repro.errors import SpecificationError
from repro.spec import (
    EzRTSpec,
    Message,
    Processor,
    SpecBuilder,
    Task,
    ensure_valid,
    validate_spec,
)


def base_spec() -> EzRTSpec:
    spec = EzRTSpec("v")
    spec.add_processor(Processor("proc0"))
    spec.add_task(Task("A", computation=2, deadline=8, period=10))
    spec.add_task(Task("B", computation=3, deadline=10, period=10))
    return spec


class TestTimingRules:
    def test_valid_passes(self):
        assert validate_spec(base_spec()) == []

    def test_deadline_exceeds_period(self):
        spec = base_spec()
        spec.tasks[0].deadline = 12
        assert any(
            "c <= d <= p" in p for p in validate_spec(spec)
        )

    def test_computation_exceeds_deadline(self):
        spec = base_spec()
        spec.tasks[0].computation = 9
        problems = validate_spec(spec)
        assert problems  # violates both c<=d and window rules

    def test_empty_release_window(self):
        spec = base_spec()
        spec.tasks[0].release = 7  # r + c = 9 > d = 8
        assert any(
            "release window" in p for p in validate_spec(spec)
        )

    def test_ensure_valid_raises_with_all_problems(self):
        spec = base_spec()
        spec.tasks[0].deadline = 99
        spec.tasks[1].release = 99
        with pytest.raises(SpecificationError) as info:
            ensure_valid(spec)
        message = str(info.value)
        assert "A" in message and "B" in message


class TestNameRules:
    def test_duplicate_names_flagged(self):
        spec = base_spec()
        spec.tasks.append(
            Task("A", computation=1, deadline=5, period=10)
        )
        assert any("duplicate task" in p for p in validate_spec(spec))

    def test_duplicate_identifier_flagged(self):
        spec = base_spec()
        spec.tasks[1].identifier = spec.tasks[0].identifier
        assert any(
            "duplicate identifier" in p for p in validate_spec(spec)
        )


class TestRelationRules:
    def test_unknown_precedence_target(self):
        spec = base_spec()
        spec.tasks[0].precedes_tasks.append("GHOST")
        assert any("unknown task" in p for p in validate_spec(spec))

    def test_self_precedence(self):
        spec = base_spec()
        spec.tasks[0].precedes_tasks.append("A")
        assert any("precedes itself" in p for p in validate_spec(spec))

    def test_asymmetric_exclusion_flagged(self):
        spec = base_spec()
        spec.tasks[0].excludes_tasks.append("B")  # one side only
        assert any("not symmetric" in p for p in validate_spec(spec))

    def test_precedence_different_periods(self):
        spec = base_spec()
        spec.tasks[1].period = 20
        spec.tasks[1].deadline = 10
        spec.add_precedence("A", "B")
        assert any(
            "different periods" in p for p in validate_spec(spec)
        )

    def test_precedence_cycle(self):
        spec = base_spec()
        spec.add_precedence("A", "B")
        spec.add_precedence("B", "A")
        assert any("cycle" in p for p in validate_spec(spec))

    def test_long_cycle_detected(self):
        spec = base_spec()
        spec.add_task(Task("C", computation=1, deadline=9, period=10))
        spec.add_precedence("A", "B")
        spec.add_precedence("B", "C")
        spec.add_precedence("C", "A")
        assert any("cycle" in p for p in validate_spec(spec))

    def test_diamond_is_not_a_cycle(self):
        spec = base_spec()
        spec.add_task(Task("C", computation=1, deadline=9, period=10))
        spec.add_task(Task("D", computation=1, deadline=9, period=10))
        spec.add_precedence("A", "B")
        spec.add_precedence("A", "C")
        spec.add_precedence("B", "D")
        spec.add_precedence("C", "D")
        assert validate_spec(spec) == []


class TestMessageRules:
    def test_valid_message(self):
        spec = base_spec()
        spec.add_message(
            Message("m", sender="A", precedes="B", communication=1)
        )
        spec.task("A").precedes_msgs.append("m")
        assert validate_spec(spec) == []

    def test_unknown_sender(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="GHOST"))
        assert any("unknown sender" in p for p in validate_spec(spec))

    def test_unknown_receiver(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="GHOST"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "unknown receiver" in p for p in validate_spec(spec)
        )

    def test_sender_equals_receiver(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="A"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "sender equals receiver" in p for p in validate_spec(spec)
        )

    def test_message_periods_must_match(self):
        spec = base_spec()
        spec.tasks[1].period = 20
        spec.tasks[1].deadline = 12
        spec.add_message(Message("m", sender="A", precedes="B"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "different periods" in p for p in validate_spec(spec)
        )

    def test_sender_must_list_message(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="B"))
        assert any(
            "does not list it" in p for p in validate_spec(spec)
        )

    def test_dangling_precedes_msgs(self):
        spec = base_spec()
        spec.task("A").precedes_msgs.append("ghost-msg")
        assert any(
            "unknown message" in p for p in validate_spec(spec)
        )


class TestProcessorRules:
    def test_undeclared_processor(self):
        spec = base_spec()
        spec.tasks[0].processor = "dsp9"
        assert any(
            "undeclared processor" in p for p in validate_spec(spec)
        )

    def test_no_processors_declared_is_fine(self):
        spec = EzRTSpec("implicit")
        spec.add_task(Task("A", computation=1, deadline=5, period=10))
        assert validate_spec(spec) == []


class TestBuilder:
    def test_fluent_chain(self):
        spec = (
            SpecBuilder("b")
            .processor("cpu")
            .task("A", computation=1, deadline=5, period=10,
                  code="a();")
            .task("B", computation=2, deadline=10, period=10,
                  scheduling="P")
            .precedence("A", "B")
            .exclusion("A", "B")
            .message("m", sender="A", receiver="B", communication=1)
            .build()
        )
        assert spec.task("A").code.content == "a();"
        assert spec.task("B").is_preemptive
        assert spec.messages[0].sender == "A"
        assert "m" in spec.task("A").precedes_msgs

    def test_default_processor_assignment(self):
        spec = (
            SpecBuilder("b")
            .processor("cpu7")
            .task("A", computation=1, deadline=5, period=10)
            .build()
        )
        assert spec.task("A").processor == "cpu7"

    def test_empty_build_rejected(self):
        with pytest.raises(SpecificationError):
            SpecBuilder("empty").build()

    def test_invalid_spec_rejected_at_build(self):
        builder = SpecBuilder("bad").task(
            "A", computation=9, deadline=5, period=10
        )
        with pytest.raises(SpecificationError):
            builder.build()

    def test_build_without_validation(self):
        builder = SpecBuilder("bad").task(
            "A", computation=9, deadline=5, period=10
        )
        spec = builder.build(validate=False)
        assert spec.task("A").computation == 9

    def test_source_attachment(self):
        spec = (
            SpecBuilder("b")
            .task("A", computation=1, deadline=5, period=10)
            .source("A", "late_attach();")
            .build()
        )
        assert spec.task("A").code.content == "late_attach();"
