"""Tests for specification validation rules."""

import pytest

from repro.errors import SpecificationError
from repro.spec import (
    EzRTSpec,
    Message,
    Processor,
    SpecBuilder,
    Task,
    ensure_valid,
    validate_spec,
)


def base_spec() -> EzRTSpec:
    spec = EzRTSpec("v")
    spec.add_processor(Processor("proc0"))
    spec.add_task(Task("A", computation=2, deadline=8, period=10))
    spec.add_task(Task("B", computation=3, deadline=10, period=10))
    return spec


class TestTimingRules:
    def test_valid_passes(self):
        assert validate_spec(base_spec()) == []

    def test_deadline_exceeds_period(self):
        spec = base_spec()
        spec.tasks[0].deadline = 12
        assert any(
            "c <= d <= p" in p for p in validate_spec(spec)
        )

    def test_computation_exceeds_deadline(self):
        spec = base_spec()
        spec.tasks[0].computation = 9
        problems = validate_spec(spec)
        assert problems  # violates both c<=d and window rules

    def test_empty_release_window(self):
        spec = base_spec()
        spec.tasks[0].release = 7  # r + c = 9 > d = 8
        assert any(
            "release window" in p for p in validate_spec(spec)
        )

    def test_ensure_valid_raises_with_all_problems(self):
        spec = base_spec()
        spec.tasks[0].deadline = 99
        spec.tasks[1].release = 99
        with pytest.raises(SpecificationError) as info:
            ensure_valid(spec)
        message = str(info.value)
        assert "A" in message and "B" in message


class TestNameRules:
    def test_duplicate_names_flagged(self):
        spec = base_spec()
        spec.tasks.append(
            Task("A", computation=1, deadline=5, period=10)
        )
        assert any("duplicate task" in p for p in validate_spec(spec))

    def test_duplicate_identifier_flagged(self):
        spec = base_spec()
        spec.tasks[1].identifier = spec.tasks[0].identifier
        assert any(
            "duplicate identifier" in p for p in validate_spec(spec)
        )


class TestRelationRules:
    def test_unknown_precedence_target(self):
        spec = base_spec()
        spec.tasks[0].precedes_tasks.append("GHOST")
        assert any("unknown task" in p for p in validate_spec(spec))

    def test_self_precedence(self):
        spec = base_spec()
        spec.tasks[0].precedes_tasks.append("A")
        assert any("precedes itself" in p for p in validate_spec(spec))

    def test_asymmetric_exclusion_flagged(self):
        spec = base_spec()
        spec.tasks[0].excludes_tasks.append("B")  # one side only
        assert any("not symmetric" in p for p in validate_spec(spec))

    def test_precedence_different_periods(self):
        spec = base_spec()
        spec.tasks[1].period = 20
        spec.tasks[1].deadline = 10
        spec.add_precedence("A", "B")
        assert any(
            "different periods" in p for p in validate_spec(spec)
        )

    def test_precedence_cycle(self):
        spec = base_spec()
        spec.add_precedence("A", "B")
        spec.add_precedence("B", "A")
        assert any("cycle" in p for p in validate_spec(spec))

    def test_long_cycle_detected(self):
        spec = base_spec()
        spec.add_task(Task("C", computation=1, deadline=9, period=10))
        spec.add_precedence("A", "B")
        spec.add_precedence("B", "C")
        spec.add_precedence("C", "A")
        assert any("cycle" in p for p in validate_spec(spec))

    def test_diamond_is_not_a_cycle(self):
        spec = base_spec()
        spec.add_task(Task("C", computation=1, deadline=9, period=10))
        spec.add_task(Task("D", computation=1, deadline=9, period=10))
        spec.add_precedence("A", "B")
        spec.add_precedence("A", "C")
        spec.add_precedence("B", "D")
        spec.add_precedence("C", "D")
        assert validate_spec(spec) == []


class TestMessageRules:
    def test_valid_message(self):
        spec = base_spec()
        spec.add_message(
            Message("m", sender="A", precedes="B", communication=1)
        )
        spec.task("A").precedes_msgs.append("m")
        assert validate_spec(spec) == []

    def test_unknown_sender(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="GHOST"))
        assert any("unknown sender" in p for p in validate_spec(spec))

    def test_unknown_receiver(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="GHOST"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "unknown receiver" in p for p in validate_spec(spec)
        )

    def test_sender_equals_receiver(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="A"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "sender equals receiver" in p for p in validate_spec(spec)
        )

    def test_message_periods_must_match(self):
        spec = base_spec()
        spec.tasks[1].period = 20
        spec.tasks[1].deadline = 12
        spec.add_message(Message("m", sender="A", precedes="B"))
        spec.task("A").precedes_msgs.append("m")
        assert any(
            "different periods" in p for p in validate_spec(spec)
        )

    def test_sender_must_list_message(self):
        spec = base_spec()
        spec.add_message(Message("m", sender="A", precedes="B"))
        assert any(
            "does not list it" in p for p in validate_spec(spec)
        )

    def test_dangling_precedes_msgs(self):
        spec = base_spec()
        spec.task("A").precedes_msgs.append("ghost-msg")
        assert any(
            "unknown message" in p for p in validate_spec(spec)
        )


class TestProcessorRules:
    def test_undeclared_processor(self):
        spec = base_spec()
        spec.tasks[0].processor = "dsp9"
        assert any(
            "undeclared processor" in p for p in validate_spec(spec)
        )

    def test_no_processors_declared_is_fine(self):
        spec = EzRTSpec("implicit")
        spec.add_task(Task("A", computation=1, deadline=5, period=10))
        assert validate_spec(spec) == []


class TestBuilder:
    def test_fluent_chain(self):
        spec = (
            SpecBuilder("b")
            .processor("cpu")
            .task("A", computation=1, deadline=5, period=10,
                  code="a();")
            .task("B", computation=2, deadline=10, period=10,
                  scheduling="P")
            .precedence("A", "B")
            .exclusion("A", "B")
            .message("m", sender="A", receiver="B", communication=1)
            .build()
        )
        assert spec.task("A").code.content == "a();"
        assert spec.task("B").is_preemptive
        assert spec.messages[0].sender == "A"
        assert "m" in spec.task("A").precedes_msgs

    def test_default_processor_assignment(self):
        spec = (
            SpecBuilder("b")
            .processor("cpu7")
            .task("A", computation=1, deadline=5, period=10)
            .build()
        )
        assert spec.task("A").processor == "cpu7"

    def test_empty_build_rejected(self):
        with pytest.raises(SpecificationError):
            SpecBuilder("empty").build()

    def test_invalid_spec_rejected_at_build(self):
        builder = SpecBuilder("bad").task(
            "A", computation=9, deadline=5, period=10
        )
        with pytest.raises(SpecificationError):
            builder.build()

    def test_build_without_validation(self):
        builder = SpecBuilder("bad").task(
            "A", computation=9, deadline=5, period=10
        )
        spec = builder.build(validate=False)
        assert spec.task("A").computation == 9

    def test_source_attachment(self):
        spec = (
            SpecBuilder("b")
            .task("A", computation=1, deadline=5, period=10)
            .source("A", "late_attach();")
            .build()
        )
        assert spec.task("A").code.content == "late_attach();"


# ----------------------------------------------------------------------
# Diagnostic codes — every validator error path must classify to its
# stable ``repro.lint`` code, so validator wording and the lint rule
# table cannot drift apart.
# ----------------------------------------------------------------------
def _with_duplicate_task(spec):
    spec.tasks.append(Task("A", computation=1, deadline=5, period=10))


def _with_duplicate_processor(spec):
    spec.processors.append(Processor("proc0"))


def _with_duplicate_message(spec):
    # the model API rejects duplicates up front; bypass it to exercise
    # the validator's own check on hand-built specs
    spec.add_message(Message("m", sender="A", precedes="B"))
    spec.messages.append(Message("m", sender="B", precedes="A"))
    spec.task("A").precedes_msgs.append("m")
    spec.task("B").precedes_msgs.append("m")


def _with_duplicate_identifier(spec):
    spec.tasks[1].identifier = spec.tasks[0].identifier


def _with_bad_timing(spec):
    spec.tasks[0].deadline = 12


def _with_empty_window(spec):
    spec.tasks[0].release = 7


def _with_unknown_precedence(spec):
    spec.tasks[0].precedes_tasks.append("GHOST")


def _with_self_precedence(spec):
    spec.tasks[0].precedes_tasks.append("A")


def _with_unknown_exclusion(spec):
    spec.tasks[0].excludes_tasks.append("GHOST")


def _with_self_exclusion(spec):
    spec.tasks[0].excludes_tasks.append("A")


def _with_asymmetric_exclusion(spec):
    spec.tasks[0].excludes_tasks.append("B")


def _with_period_mismatch_precedence(spec):
    spec.tasks[1].period = 20
    spec.tasks[1].deadline = 12
    spec.tasks[0].precedes_tasks.append("B")


def _with_precedence_cycle(spec):
    spec.tasks[0].precedes_tasks.append("B")
    spec.tasks[1].precedes_tasks.append("A")


def _with_unknown_sender(spec):
    spec.add_message(Message("m", sender="GHOST"))


def _with_unknown_receiver(spec):
    spec.add_message(Message("m", sender="A", precedes="GHOST"))
    spec.task("A").precedes_msgs.append("m")


def _with_loopback_message(spec):
    spec.add_message(Message("m", sender="A", precedes="A"))
    spec.task("A").precedes_msgs.append("m")


def _with_period_mismatch_message(spec):
    spec.tasks[1].period = 20
    spec.tasks[1].deadline = 12
    spec.add_message(Message("m", sender="A", precedes="B"))
    spec.task("A").precedes_msgs.append("m")


def _with_dangling_precedes_msgs(spec):
    spec.task("A").precedes_msgs.append("ghost-msg")


def _with_unlisted_message(spec):
    spec.add_message(Message("m", sender="A", precedes="B"))


def _with_undeclared_processor(spec):
    spec.tasks[0].processor = "proc9"


_CODE_CASES = [
    (_with_duplicate_task, "duplicate task name", "EZS107"),
    (_with_duplicate_processor, "duplicate processor name", "EZS107"),
    (_with_duplicate_message, "duplicate message name", "EZS107"),
    (_with_duplicate_identifier, "duplicate identifier", "EZS107"),
    (_with_bad_timing, "requires c <= d <= p", "EZS103"),
    (_with_empty_window, "release window", "EZS104"),
    (_with_unknown_precedence, "precedes unknown task", "EZS108"),
    (_with_self_precedence, "precedes itself", "EZS108"),
    (_with_unknown_exclusion, "excludes unknown task", "EZS108"),
    (_with_self_exclusion, "excludes itself", "EZS108"),
    (_with_asymmetric_exclusion, "is not symmetric", "EZS108"),
    (
        _with_period_mismatch_precedence,
        "different periods",
        "EZS109",
    ),
    (_with_precedence_cycle, "precedence cycle", "EZS109"),
    (_with_unknown_sender, "unknown sender", "EZS110"),
    (_with_unknown_receiver, "unknown receiver", "EZS110"),
    (_with_loopback_message, "sender equals receiver", "EZS110"),
    (_with_period_mismatch_message, "different periods", "EZS110"),
    (
        _with_dangling_precedes_msgs,
        "precedes unknown message",
        "EZS110",
    ),
    (_with_unlisted_message, "does not list it", "EZS110"),
    (_with_undeclared_processor, "undeclared processor", "EZS111"),
]


class TestDiagnosticCodes:
    @pytest.mark.parametrize(
        "mutate, fragment, code",
        _CODE_CASES,
        ids=[mutate.__name__.lstrip("_") for mutate, _, _ in _CODE_CASES],
    )
    def test_problem_classifies_to_stable_code(
        self, mutate, fragment, code
    ):
        from repro.lint import classify_problem

        spec = base_spec()
        mutate(spec)
        matching = [
            p for p in validate_spec(spec) if fragment in p
        ]
        assert matching, f"no validator problem mentions {fragment!r}"
        assert classify_problem(matching[0]) == code

    def test_unmatched_wording_falls_back_to_generic(self):
        from repro.lint.specrules import GENERIC_INVALID

        from repro.lint import classify_problem

        assert classify_problem("some novel problem") == GENERIC_INVALID

    def test_validation_diagnostics_cover_all_problems(self):
        from repro.lint import validation_diagnostics

        spec = base_spec()
        _with_bad_timing(spec)
        _with_undeclared_processor(spec)
        diagnostics = validation_diagnostics(spec)
        assert len(diagnostics) == len(validate_spec(spec))
        assert {d.code for d in diagnostics} >= {"EZS103", "EZS111"}
