"""Unit tests for time Petri net construction and queries."""

import pytest

from repro.errors import NetConstructionError
from repro.tpn import TimeInterval, TimePetriNet, net_union


class TestConstruction:
    def test_add_nodes(self):
        net = TimePetriNet("n")
        net.add_place("p", marking=2)
        net.add_transition("t", TimeInterval(1, 2))
        assert net.place("p").marking == 2
        assert net.transition("t").interval == TimeInterval(1, 2)

    def test_default_interval_is_zero(self):
        net = TimePetriNet("n")
        net.add_transition("t")
        assert net.transition("t").interval.is_immediate

    def test_duplicate_names_rejected(self):
        net = TimePetriNet("n")
        net.add_place("x")
        with pytest.raises(NetConstructionError):
            net.add_place("x")
        with pytest.raises(NetConstructionError):
            net.add_transition("x")

    def test_empty_name_rejected(self):
        net = TimePetriNet("n")
        with pytest.raises(NetConstructionError):
            net.add_place("")

    def test_negative_marking_rejected(self):
        net = TimePetriNet("n")
        with pytest.raises(NetConstructionError):
            net.add_place("p", marking=-1)

    def test_label_defaults_to_name(self):
        net = TimePetriNet("n")
        assert net.add_place("p").label == "p"

    def test_contains(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        assert "p" in net and "t" in net and "q" not in net

    def test_unknown_lookup_raises(self):
        net = TimePetriNet("n")
        with pytest.raises(NetConstructionError):
            net.place("nope")
        with pytest.raises(NetConstructionError):
            net.transition("nope")


class TestArcs:
    def test_directions(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("p", "t", 2)
        net.add_arc("t", "p", 3)
        assert net.input_weight("p", "t") == 2
        assert net.output_weight("t", "p") == 3

    def test_weight_accumulates(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("p", "t", 2)
        assert net.input_weight("p", "t") == 3

    def test_place_place_rejected(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_place("q")
        with pytest.raises(NetConstructionError):
            net.add_arc("p", "q")

    def test_transition_transition_rejected(self):
        net = TimePetriNet("n")
        net.add_transition("t")
        net.add_transition("u")
        with pytest.raises(NetConstructionError):
            net.add_arc("t", "u")

    def test_unknown_node_rejected(self):
        net = TimePetriNet("n")
        net.add_place("p")
        with pytest.raises(NetConstructionError):
            net.add_arc("p", "ghost")

    def test_zero_weight_rejected(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        with pytest.raises(NetConstructionError):
            net.add_arc("p", "t", 0)

    def test_remove_arc(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.remove_arc("p", "t")
        assert net.input_weight("p", "t") == 0

    def test_remove_missing_arc_raises(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        with pytest.raises(NetConstructionError):
            net.remove_arc("p", "t")

    def test_arcs_iteration(self, simple_net):
        arcs = {(a.source, a.target): a.weight for a in simple_net.arcs()}
        assert arcs[("p0", "t_start")] == 1
        assert arcs[("t_end", "proc")] == 1
        assert len(arcs) == 6


class TestPresets:
    def test_preset_postset(self, simple_net):
        assert simple_net.preset("t_start") == {"p0": 1, "proc": 1}
        assert simple_net.postset("t_start") == {"p1": 1}
        assert simple_net.place_preset("proc") == {"t_end": 1}
        assert simple_net.place_postset("proc") == {"t_start": 1}

    def test_roles(self):
        net = TimePetriNet("n")
        net.add_place("dm", role="deadline-miss")
        net.add_place("ok")
        net.add_transition("t", role="grant")
        assert [p.name for p in net.places_with_role("deadline-miss")] == [
            "dm"
        ]
        assert [
            t.name for t in net.transitions_with_role("grant")
        ] == ["t"]


class TestFinalMarking:
    def test_set_and_vector(self, simple_net):
        vector = simple_net.final_marking_vector()
        names = simple_net.place_names
        assert vector[names.index("done")] == 1
        assert vector[names.index("proc")] == 1

    def test_unknown_place_rejected(self, simple_net):
        with pytest.raises(NetConstructionError):
            simple_net.set_final_marking({"ghost": 1})

    def test_negative_rejected(self, simple_net):
        with pytest.raises(NetConstructionError):
            simple_net.set_final_marking({"done": -1})


class TestValidation:
    def test_source_transition_rejected(self):
        net = TimePetriNet("n")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("t", "p")
        with pytest.raises(NetConstructionError):
            net.validate()

    def test_isolated_places(self):
        net = TimePetriNet("n")
        net.add_place("connected")
        net.add_place("lonely")
        net.add_transition("t")
        net.add_arc("connected", "t")
        assert net.isolated_places() == ("lonely",)

    def test_stats(self, simple_net):
        stats = simple_net.stats()
        assert stats == {
            "places": 4,
            "transitions": 2,
            "arcs": 6,
            "tokens": 2,
        }


class TestCompile:
    def test_roundtrip_structure(self, simple_net):
        compiled = simple_net.compile()
        assert compiled.num_places == 4
        assert compiled.num_transitions == 2
        assert compiled.m0 == (1, 1, 0, 0)
        t = compiled.transition_index["t_start"]
        pre = dict(compiled.pre[t])
        assert pre == {
            compiled.place_index["p0"]: 1,
            compiled.place_index["proc"]: 1,
        }

    def test_delta_is_net_effect(self, simple_net):
        compiled = simple_net.compile()
        t = compiled.transition_index["t_end"]
        delta = dict(compiled.delta[t])
        assert delta[compiled.place_index["p1"]] == -1
        assert delta[compiled.place_index["done"]] == 1
        assert delta[compiled.place_index["proc"]] == 1

    def test_self_loop_has_no_delta_entry(self):
        net = TimePetriNet("loop")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval(1, 1))
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        net.add_arc("t", "q")
        compiled = net.compile()
        t = compiled.transition_index["t"]
        delta = dict(compiled.delta[t])
        assert compiled.place_index["p"] not in delta
        assert delta[compiled.place_index["q"]] == 1

    def test_is_final(self, simple_net):
        compiled = simple_net.compile()
        assert compiled.is_final((0, 1, 0, 1))
        assert not compiled.is_final((1, 1, 0, 0))

    def test_interval_of(self, simple_net):
        compiled = simple_net.compile()
        index = compiled.transition_index["t_start"]
        assert compiled.interval_of(index) == TimeInterval(2, 4)


class TestUnion:
    def test_disjoint_union(self):
        a = TimePetriNet("a")
        a.add_place("p", marking=1)
        a.add_transition("t")
        a.add_arc("p", "t")
        b = TimePetriNet("b")
        b.add_place("q", marking=2)
        b.add_transition("u", TimeInterval(1, 2))
        b.add_arc("q", "u")
        merged = net_union("ab", [a, b])
        assert set(merged.place_names) == {"p", "q"}
        assert merged.transition("u").interval == TimeInterval(1, 2)
        assert merged.input_weight("q", "u") == 1

    def test_collision_rejected(self):
        a = TimePetriNet("a")
        a.add_place("p")
        b = TimePetriNet("b")
        b.add_place("p")
        with pytest.raises(NetConstructionError):
            net_union("ab", [a, b])

    def test_final_markings_merge(self):
        a = TimePetriNet("a")
        a.add_place("p", marking=1)
        a.add_transition("t")
        a.add_arc("p", "t")
        a.set_final_marking({"p": 0})
        b = TimePetriNet("b")
        b.add_place("q")
        b.add_transition("u")
        b.add_arc("q", "u")
        b.set_final_marking({"q": 1})
        merged = net_union("ab", [a, b])
        assert merged.final_marking == {"p": 0, "q": 1}
