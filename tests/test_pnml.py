"""Tests for PNML (ISO/IEC 15909-2) interchange."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PNMLError
from repro.pnml import PNML_NS, TOOL_NAME, dumps, load, loads, save
from repro.tpn import INF, TimeInterval, TimePetriNet


def nets_equal(a: TimePetriNet, b: TimePetriNet) -> bool:
    if a.place_names != b.place_names:
        return False
    if a.transition_names != b.transition_names:
        return False
    for place in a.places:
        other = b.place(place.name)
        if (place.marking, place.role, place.task, place.label) != (
            other.marking,
            other.role,
            other.task,
            other.label,
        ):
            return False
    for transition in a.transitions:
        other = b.transition(transition.name)
        if (
            transition.interval,
            transition.priority,
            transition.role,
            transition.task,
            transition.code,
        ) != (
            other.interval,
            other.priority,
            other.role,
            other.task,
            other.code,
        ):
            return False
    for t in a.transition_names:
        if a.preset(t) != b.preset(t) or a.postset(t) != b.postset(t):
            return False
    return a.final_marking == b.final_marking


class TestWriter:
    def test_document_structure(self, simple_net):
        document = dumps(simple_net)
        assert document.startswith("<?xml")
        assert PNML_NS in document
        assert "<place" in document and "<transition" in document
        assert f'tool="{TOOL_NAME}"' in document

    def test_weights_as_inscriptions(self):
        net = TimePetriNet("w")
        net.add_place("p", marking=3)
        net.add_transition("t", TimeInterval(1, 2))
        net.add_arc("p", "t", 3)
        document = dumps(net)
        assert "<inscription>" in document
        assert "<text>3</text>" in document

    def test_infinite_lft(self):
        net = TimePetriNet("inf")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition("t", TimeInterval.unbounded(2))
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        document = dumps(net)
        assert 'lft="inf"' in document


class TestRoundTrip:
    def test_simple_net(self, simple_net):
        assert nets_equal(simple_net, loads(dumps(simple_net)))

    def test_composed_fig3(self, fig3_model):
        assert nets_equal(
            fig3_model.net, loads(dumps(fig3_model.net))
        )

    def test_composed_fig4_expanded(self, expanded_options):
        from repro.blocks import compose
        from repro.spec import fig4_exclusion

        model = compose(fig4_exclusion(), expanded_options)
        assert nets_equal(model.net, loads(dumps(model.net)))

    def test_mine_pump(self, mine_pump_model):
        assert nets_equal(
            mine_pump_model.net, loads(dumps(mine_pump_model.net))
        )

    def test_code_attachment_survives(self):
        net = TimePetriNet("code")
        net.add_place("p", marking=1)
        net.add_place("q")
        net.add_transition(
            "t",
            TimeInterval(1, 1),
            code="do_work();\ncleanup();",
            task="X",
            role="compute",
        )
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        parsed = loads(dumps(net))
        assert parsed.transition("t").code == "do_work();\ncleanup();"

    def test_file_roundtrip(self, tmp_path, simple_net):
        path = str(tmp_path / "net.pnml")
        save(simple_net, path)
        assert nets_equal(simple_net, load(path))


class TestReaderErrors:
    def test_malformed_xml(self):
        with pytest.raises(PNMLError, match="malformed"):
            loads("<pnml><net>")

    def test_wrong_root(self):
        with pytest.raises(PNMLError, match="expected <pnml>"):
            loads("<notpnml/>")

    def test_missing_net(self):
        with pytest.raises(PNMLError, match="no <net>"):
            loads(f'<pnml xmlns="{PNML_NS}"/>')

    def test_arc_to_unknown_node(self):
        document = f"""<pnml xmlns="{PNML_NS}"><net id="n" type="t">
        <page id="pg">
          <place id="p"/>
          <arc id="a" source="p" target="ghost"/>
        </page></net></pnml>"""
        with pytest.raises(Exception):
            loads(document)

    def test_plain_ptnet_gets_default_intervals(self):
        document = f"""<pnml xmlns="{PNML_NS}"><net id="n" type="t">
        <page id="pg">
          <place id="p"><initialMarking><text>1</text></initialMarking>
          </place>
          <transition id="t"/>
          <arc id="a" source="p" target="t"/>
        </page></net></pnml>"""
        net = loads(document)
        interval = net.transition("t").interval
        assert interval.eft == 0 and interval.lft == INF

    def test_nodes_directly_under_net(self):
        # some tools omit <page>
        document = f"""<pnml xmlns="{PNML_NS}"><net id="n" type="t">
          <place id="p"/>
          <transition id="t"/>
          <arc id="a" source="p" target="t"/>
        </net></pnml>"""
        net = loads(document)
        assert net.has_place("p") and net.has_transition("t")


@st.composite
def pnml_nets(draw):
    n_places = draw(st.integers(min_value=1, max_value=6))
    n_transitions = draw(st.integers(min_value=1, max_value=5))
    net = TimePetriNet(
        draw(st.text(alphabet="abcxyz", min_size=1, max_size=6))
    )
    for i in range(n_places):
        net.add_place(
            f"p{i}",
            marking=draw(st.integers(0, 3)),
            role=draw(
                st.sampled_from([None, "deadline-miss", "exclusion"])
            ),
        )
    for j in range(n_transitions):
        eft = draw(st.integers(0, 9))
        unbounded = draw(st.booleans())
        interval = (
            TimeInterval.unbounded(eft)
            if unbounded
            else TimeInterval(eft, eft + draw(st.integers(0, 9)))
        )
        net.add_transition(
            f"t{j}",
            interval,
            priority=draw(st.integers(0, 100)),
            task=draw(st.sampled_from([None, "A", "B"])),
        )
        inputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        for p in inputs:
            net.add_arc(f"p{p}", f"t{j}", draw(st.integers(1, 4)))
        outputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=0,
                max_size=3,
                unique=True,
            )
        )
        for p in outputs:
            net.add_arc(f"t{j}", f"p{p}", draw(st.integers(1, 4)))
    if draw(st.booleans()):
        net.set_final_marking(
            {f"p{draw(st.integers(0, n_places - 1))}": 1}
        )
    return net


class TestRoundTripProperty:
    @given(pnml_nets())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_lossless(self, net):
        assert nets_equal(net, loads(dumps(net)))

    @given(pnml_nets())
    @settings(max_examples=20, deadline=None)
    def test_double_roundtrip_stable(self, net):
        once = dumps(loads(dumps(net)))
        twice = dumps(loads(once))
        assert once == twice
