"""Tests of the ``repro.batch`` subsystem: engine, cache, campaigns.

Covers the failure paths the subsystem exists to contain — a worker
raising mid-job, per-job timeout expiry, cache hit/miss accounting —
plus determinism of the JSONL output across runs with a fixed seed,
cache-key semantics, the campaign runner and the ``ezrt batch`` CLI.
"""

import json

import pytest

from repro.batch import (
    BatchEngine,
    BatchJob,
    CampaignGrid,
    ResultCache,
    STATUS_ERROR,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_TIMEOUT,
    cache_key,
    execute_job,
    run_campaign,
)
from repro.blocks import ComposerOptions
from repro.cli import main
from repro.errors import SpecificationError
from repro.scheduler import SchedulerConfig
from repro.spec import fig3_precedence, fig4_exclusion, mine_pump
from repro.spec.model import EzRTSpec, Task
from repro.workloads import campaign_task_sets, random_task_set


def broken_spec() -> EzRTSpec:
    """A spec that passes construction but explodes inside the worker.

    ``Task`` accepts ``deadline < computation`` (the builder and DSL
    validate, direct construction does not); composition then raises —
    exactly the mid-job worker failure the engine must contain.
    """
    return EzRTSpec(
        "broken",
        tasks=[Task("t0", computation=5, deadline=2, period=10)],
    )


class TestExecuteJob:
    def test_feasible(self):
        outcome = execute_job(BatchJob(spec=fig3_precedence()))
        assert outcome.status == STATUS_FEASIBLE
        assert outcome.feasible
        assert outcome.schedule_length > 0
        assert outcome.makespan > 0
        assert outcome.n_tasks == 3
        assert outcome.error is None
        assert outcome.firing_schedule is None  # not stored by default

    def test_infeasible(self):
        # two tasks that each need the whole period: c1 + c2 > p
        spec = EzRTSpec(
            "overfull",
            tasks=[
                Task("a", computation=6, deadline=10, period=10),
                Task("b", computation=6, deadline=10, period=10),
            ],
        )
        outcome = execute_job(BatchJob(spec=spec))
        assert outcome.status == STATUS_INFEASIBLE
        assert not outcome.feasible
        assert not outcome.exhausted

    def test_worker_error_is_contained(self):
        outcome = execute_job(BatchJob(spec=broken_spec()))
        assert outcome.status == STATUS_ERROR
        assert outcome.error is not None
        assert "SpecificationError" in outcome.error

    def test_timeout_expiry(self):
        # mine-pump generates >1024 states, so the DFS wall-clock
        # check fires and an (effectively) zero budget must expire
        outcome = execute_job(
            BatchJob(spec=mine_pump(), timeout=1e-6)
        )
        assert outcome.status == STATUS_TIMEOUT
        assert outcome.exhausted
        assert not outcome.feasible

    def test_store_schedule(self):
        outcome = execute_job(
            BatchJob(spec=fig3_precedence(), store_schedule=True)
        )
        assert outcome.firing_schedule
        assert len(outcome.firing_schedule) == outcome.schedule_length

    def test_codegen_and_simulate_stages(self):
        outcome = execute_job(
            BatchJob(
                spec=fig3_precedence(),
                codegen_target="hostsim",
                simulate=True,
            )
        )
        assert outcome.status == STATUS_FEASIBLE
        assert outcome.codegen_files and outcome.codegen_files > 0
        assert outcome.trace_violations == 0

    def test_compiles_net_once_across_stages(self, monkeypatch):
        """Schedule, codegen and simulate stages share one compiled
        net: the job must not re-freeze the net between stages."""
        from repro.tpn.net import TimePetriNet

        calls = {"n": 0}
        original = TimePetriNet.compile

        def counting_compile(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(TimePetriNet, "compile", counting_compile)
        outcome = execute_job(
            BatchJob(
                spec=fig3_precedence(),
                codegen_target="hostsim",
                simulate=True,
            )
        )
        assert outcome.status == STATUS_FEASIBLE
        assert calls["n"] == 1

    def test_rows_exclude_wall_clock_throughput(self):
        """states_per_second is wall-clock-derived and must never leak
        into the deterministic JSONL row."""
        outcome = execute_job(BatchJob(spec=fig3_precedence()))
        row = outcome.row()
        assert "states_per_second" not in row["search"]
        assert "elapsed_seconds" not in row["search"]

    def test_effective_config_folds_timeout(self):
        job = BatchJob(
            spec=fig3_precedence(),
            config=SchedulerConfig(max_seconds=10.0),
            timeout=2.0,
        )
        assert job.effective_config().max_seconds == 2.0
        job = BatchJob(
            spec=fig3_precedence(),
            config=SchedulerConfig(max_seconds=1.0),
            timeout=2.0,
        )
        assert job.effective_config().max_seconds == 1.0


class TestCacheKey:
    def test_identifier_and_name_insensitive(self):
        # same content, freshly generated identifiers each build
        a = random_task_set(3, 0.4, seed=7)
        b = random_task_set(3, 0.4, seed=7, name="другое-имя")
        options, config = ComposerOptions(), SchedulerConfig()
        assert cache_key(a, options, config) == cache_key(
            b, options, config
        )

    def test_sensitive_to_content_and_config(self):
        spec = random_task_set(3, 0.4, seed=7)
        other = random_task_set(3, 0.4, seed=8)
        options, config = ComposerOptions(), SchedulerConfig()
        base = cache_key(spec, options, config)
        assert cache_key(other, options, config) != base
        assert (
            cache_key(spec, ComposerOptions(style="expanded"), config)
            != base
        )
        assert (
            cache_key(
                spec, options, SchedulerConfig(delay_mode="extremes")
            )
            != base
        )
        assert cache_key(spec, options, config, simulate=True) != base

    def test_timeout_changes_key(self):
        spec = fig3_precedence()
        assert (
            BatchJob(spec=spec, timeout=1.0).key()
            != BatchJob(spec=spec, timeout=2.0).key()
        )

    def test_progress_path_not_in_key(self, tmp_path):
        """The live-progress spool is pure observability: a streamed
        submission must still hit the cache entry of an identical
        job that never spooled."""
        spec = fig3_precedence()
        plain = BatchJob(spec=spec)
        spooled = BatchJob(
            spec=spec, progress_path=str(tmp_path / "p.json")
        )
        assert plain.key() == spooled.key()

    def test_engine_changes_key(self):
        """Regression: engine selection must be part of the key.

        Before v3 the fingerprint hashed every scheduler knob *except*
        the engine, so reference/incremental/stateclass runs collided
        on one cache entry despite differing stats and schedule
        shapes.
        """
        spec = fig3_precedence()
        options = ComposerOptions()
        keys = {
            cache_key(spec, options, SchedulerConfig(engine=engine))
            for engine in ("incremental", "reference", "stateclass")
        }
        assert len(keys) == 3

    def test_v2_entries_miss_cleanly(self, tmp_path):
        """A pre-engine (v2) cache entry is never served under v3."""
        import hashlib

        from repro.batch.cache import (
            CACHE_FORMAT_VERSION,
            job_fingerprint,
        )

        assert CACHE_FORMAT_VERSION == 3
        spec = fig3_precedence()
        options, config = ComposerOptions(), SchedulerConfig()
        document = job_fingerprint(spec, options, config)
        # reconstruct the v2 layout: old version tag, no engine field
        document["v"] = 2
        del document["scheduler"]["engine"]
        v2_key = hashlib.sha256(
            json.dumps(
                document, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        ).hexdigest()

        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(v2_key, {"status": "feasible", "stale": True})
        engine = BatchEngine(max_workers=1, cache=cache)
        result = engine.run([spec])
        # the stale payload must not be replayed: the job executed
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 1
        assert result.outcomes[0].status == STATUS_FEASIBLE
        assert "stale" not in result.outcomes[0].to_dict().get(
            "meta", {}
        )
        assert result.outcomes[0].key != v2_key


class TestResultCache:
    def test_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"status": "feasible"})
        assert cache.get("deadbeef") == {"status": "feasible"}
        assert cache.hits == 1
        assert cache.misses == 1
        assert "deadbeef" in cache
        assert len(cache) == 1

    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        ResultCache(directory).put("k", {"x": 1})
        fresh = ResultCache(directory)
        assert fresh.get("k") == {"x": 1}
        assert fresh.hits == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put("k", {"x": 1})
        cache.clear()
        assert cache.get("k") is None
        assert len(cache) == 0


class TestBatchEngine:
    def test_serial_run_preserves_order(self):
        engine = BatchEngine(max_workers=1)
        specs = [fig3_precedence(), fig4_exclusion()]
        result = engine.run(specs)
        assert [o.spec_name for o in result.outcomes] == [
            "fig3-precedence",
            "fig4-exclusion",
        ]
        assert result.stats.total == 2
        assert result.stats.feasible == 2
        assert result.stats.wall_seconds > 0

    def test_pooled_run_matches_serial(self):
        specs = [fig3_precedence(), fig4_exclusion(), broken_spec()]
        serial = BatchEngine(max_workers=1).run(specs)
        pooled = BatchEngine(max_workers=2).run(specs)
        assert serial.to_jsonl() == pooled.to_jsonl()
        assert pooled.stats.error == 1

    def test_mixed_statuses_counted(self):
        engine = BatchEngine(max_workers=1, job_timeout=1e-6)
        result = engine.run(
            [
                BatchJob(spec=fig3_precedence()),  # no timeout set
                BatchJob(spec=mine_pump(), timeout=1e-6),
                BatchJob(spec=broken_spec()),
            ]
        )
        statuses = [o.status for o in result.outcomes]
        assert statuses == [
            STATUS_FEASIBLE,
            STATUS_TIMEOUT,
            STATUS_ERROR,
        ]
        assert result.stats.feasible == 1
        assert result.stats.timeout == 1
        assert result.stats.error == 1

    def test_cache_hits_and_misses(self):
        cache = ResultCache()
        engine = BatchEngine(max_workers=1, cache=cache)
        specs = [fig3_precedence(), fig4_exclusion()]
        first = engine.run(specs)
        assert first.stats.cache_hits == 0
        assert first.stats.cache_misses == 2
        second = engine.run(specs)
        assert second.stats.cache_hits == 2
        assert second.stats.cache_misses == 0
        assert second.stats.hit_rate == 1.0
        assert first.to_jsonl() == second.to_jsonl()

    def test_duplicate_jobs_execute_once(self):
        engine = BatchEngine(max_workers=1)
        result = engine.run(
            [fig3_precedence(), fig3_precedence(), fig3_precedence()]
        )
        assert result.stats.deduplicated == 2
        assert result.stats.feasible == 3
        rows = result.rows()
        assert rows[0] == rows[1] == rows[2]

    def test_errors_are_not_cached(self):
        cache = ResultCache()
        engine = BatchEngine(max_workers=1, cache=cache)
        engine.run([broken_spec()])
        result = engine.run([broken_spec()])
        # second run misses again: the error re-executed
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 1
        assert result.outcomes[0].status == STATUS_ERROR

    def test_rejects_unknown_items(self):
        with pytest.raises(TypeError):
            BatchEngine(max_workers=1).run(["not a spec"])

    def test_jsonl_rows_are_wall_clock_free(self):
        result = BatchEngine(max_workers=1).run([fig3_precedence()])
        row = result.rows()[0]
        assert "elapsed_seconds" not in json.dumps(row)
        assert row["status"] == STATUS_FEASIBLE
        assert row["search"]["states_visited"] > 0


class TestCoreBudget:
    def test_pool_shrinks_within_budget(self):
        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=2),
            max_workers=8,
            cores=8,
        )
        assert engine.max_workers == 4
        assert engine.scheduler_config.parallel == 2
        assert not engine.parallel_clamped

    def test_intra_job_parallel_clamped_to_cores(self):
        """Regression: cores=2 with parallel=4 used to oversubscribe.

        The pool clamped to one worker but each job still spawned four
        intra-job processes — more busy processes than the promised
        core budget.  The intra-job width must come down to the budget
        and the clamp must be visible in the stats.
        """
        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=4),
            max_workers=4,
            cores=2,
        )
        assert engine.scheduler_config.parallel == 2
        assert engine.max_workers == 1
        assert engine.parallel_clamped
        # busy processes = pool width x intra-job workers <= cores
        assert engine.max_workers * max(
            1, engine.scheduler_config.parallel
        ) <= 2

        result = engine.run([fig3_precedence()])
        assert result.stats.parallel_clamped
        assert result.stats.intra_parallel == 2
        assert result.outcomes[0].status == STATUS_FEASIBLE
        assert "clamped to 2" in result.summary()

    def test_single_core_budget_forces_serial_search(self):
        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=4),
            max_workers=4,
            cores=1,
        )
        assert engine.scheduler_config.parallel == 1  # serial search
        assert engine.max_workers == 1
        assert engine.parallel_clamped

    def test_clamp_reflected_in_stats_dict(self):
        engine = BatchEngine(
            scheduler_config=SchedulerConfig(parallel=4),
            max_workers=2,
            cores=2,
        )
        stats = engine.run([fig3_precedence()]).stats.as_dict()
        assert stats["intra_parallel"] == 2
        assert stats["parallel_clamped"] is True

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BatchEngine(cores=0)


class TestCampaign:
    GRID = CampaignGrid(
        n_tasks=(2, 3),
        utilizations=(0.3, 0.5),
        seeds=(0, 1),
    )

    def test_grid_size_and_sweep_order(self):
        assert self.GRID.size == 8
        params = [
            p
            for p, _spec in campaign_task_sets(
                (2, 3), (0.3, 0.5), (0, 1)
            )
        ]
        assert params[0] == {
            "n_tasks": 2,
            "utilization": 0.3,
            "seed": 0,
        }
        assert params[-1] == {
            "n_tasks": 3,
            "utilization": 0.5,
            "seed": 1,
        }
        assert len(params) == 8

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecificationError):
            CampaignGrid(n_tasks=(), utilizations=(0.3,))

    def test_jsonl_deterministic_across_fresh_runs(self, tmp_path):
        # two engines, no shared cache, fixed grid seeds
        for name in ("a", "b"):
            engine = BatchEngine(max_workers=1, job_timeout=30.0)
            run_campaign(
                self.GRID,
                engine,
                jsonl_path=str(tmp_path / f"{name}.jsonl"),
            )
        assert (tmp_path / "a.jsonl").read_bytes() == (
            tmp_path / "b.jsonl"
        ).read_bytes()

    def test_cached_rerun_is_byte_identical(self, tmp_path):
        cache = ResultCache()
        engine = BatchEngine(max_workers=1, cache=cache)
        first = run_campaign(
            self.GRID, engine, jsonl_path=str(tmp_path / "1.jsonl")
        )
        second = run_campaign(
            self.GRID, engine, jsonl_path=str(tmp_path / "2.jsonl")
        )
        assert second.stats.hit_rate >= 0.9
        assert (tmp_path / "1.jsonl").read_bytes() == (
            tmp_path / "2.jsonl"
        ).read_bytes()
        assert first.stats.cache_misses == self.GRID.size

    def test_report_contents(self):
        campaign = run_campaign(
            self.GRID, BatchEngine(max_workers=1)
        )
        assert "jobs             : 8" in campaign.report
        assert "feasible/point" in campaign.report
        assert "n=2" in campaign.report and "n=3" in campaign.report

    def test_rows_carry_campaign_meta(self):
        campaign = run_campaign(
            self.GRID, BatchEngine(max_workers=1)
        )
        row = campaign.result.rows()[0]
        assert row["meta"] == {
            "n_tasks": 2,
            "utilization": 0.3,
            "seed": 0,
        }


class TestTopLevelExports:
    def test_workload_generators_exported(self):
        import repro

        assert repro.random_task_set is random_task_set
        assert "random_task_set" in repro.__all__
        assert "uunifast" in repro.__all__
        spec = repro.random_task_set(3, 0.4, seed=1)
        assert len(spec.tasks) == 3
        assert abs(sum(repro.uunifast(4, 0.5, __import__("random").Random(0))) - 0.5) < 1e-9

    def test_batch_api_exported(self):
        import repro

        assert repro.BatchEngine is BatchEngine
        assert "run_campaign" in repro.__all__


class TestCliBatch:
    def test_builtin_specs_with_output(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        code = main(
            ["batch", "@fig3", "@fig4", "-j", "1", "-o", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "2 feasible" in printed
        rows = [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]
        assert [r["spec"] for r in rows] == [
            "fig3-precedence",
            "fig4-exclusion",
        ]
        assert all(r["status"] == "feasible" for r in rows)

    def test_campaign_grid_with_cache_dir(self, tmp_path, capsys):
        args = [
            "batch",
            "--n-tasks", "2,3",
            "--utilizations", "0.3",
            "--seeds", "0-1",
            "-j", "1",
            "--timeout", "30",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "jobs             : 4" in first
        assert main(args) == 0  # second run served from disk cache
        second = capsys.readouterr().out
        assert "4 hit(s)" in second
        assert "(100% hit rate)" in second

    def test_grid_requires_both_axes(self, capsys):
        assert main(["batch", "--n-tasks", "2"]) == 2
        assert "campaign grids" in capsys.readouterr().err

    def test_no_work_is_an_error(self, capsys):
        assert main(["batch"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_verbose_lists_jobs(self, capsys):
        assert main(["batch", "@fig3", "-j", "1", "-v"]) == 0
        assert "fig3-precedence" in capsys.readouterr().out


class TestSchedulerMonotonicBudget:
    def test_dfs_never_reads_the_system_clock(self):
        # the budget must survive system clock adjustments, so the
        # adjustable wall clock is banned from the search entirely
        import inspect

        from repro.scheduler import dfs

        assert "time.time()" not in inspect.getsource(dfs)

    def test_max_seconds_budget_still_enforced(self):
        from repro.blocks import compose
        from repro.scheduler import find_schedule

        spec = random_task_set(6, 0.75, seed=1)
        result = find_schedule(
            compose(spec), SchedulerConfig(max_seconds=0.05)
        )
        assert not result.feasible
        assert result.exhausted


class TestHardestFirstOrdering:
    """ISSUE 5 satellite: adaptive hardest-first job dispatch.

    The contract: ordering jobs by predicted states changes
    *completion order only* — outcomes, JSONL bytes and cache
    behaviour stay in submission order — and the mode is surfaced on
    ``BatchStats``.
    """

    def _campaign(self, **engine_kwargs):
        engine = BatchEngine(max_workers=2, **engine_kwargs)
        grid = CampaignGrid(
            n_tasks=(2, 3), utilizations=(0.4, 0.8), seeds=(0,)
        )
        return engine.run(grid.jobs(engine))

    def test_jsonl_is_identical_either_way(self):
        ordered = self._campaign(hardest_first=True)
        plain = self._campaign(hardest_first=False)
        assert ordered.to_jsonl() == plain.to_jsonl()
        assert ordered.stats.hardest_first
        assert not plain.stats.hardest_first
        assert "hardest_first" in ordered.stats.as_dict()
        assert "hardest-first" in ordered.summary()

    def test_dispatch_order_is_hardest_first(self, monkeypatch):
        """With one worker the execution order is observable: the
        predicted-hardest job must run first, while outcomes keep
        submission order."""
        import repro.batch.engine as engine_module

        executed: list[str] = []
        real_execute = engine_module.execute_job

        def recording_execute(job):
            executed.append(job.spec.name)
            return real_execute(job)

        monkeypatch.setattr(
            engine_module, "execute_job", recording_execute
        )
        easy = random_task_set(2, 0.3, seed=0)
        hard = random_task_set(
            5, 0.9, seed=1, preemptive_fraction=1.0
        )
        engine = BatchEngine(
            max_workers=1,
            scheduler_config=SchedulerConfig(max_states=5_000),
        )
        result = engine.run([easy, hard])
        assert executed[0] == hard.name  # hardest dispatched first
        assert [o.spec_name for o in result.outcomes] == [
            easy.name,
            hard.name,
        ]  # submission order preserved

    def test_prediction_refined_by_adaptive_store(self):
        from repro.scheduler import AdaptiveStore, spec_family

        spec = random_task_set(2, 0.3, seed=0)
        store = AdaptiveStore()
        engine = BatchEngine(max_workers=1, adaptive=store)
        job = engine.make_job(spec)
        heuristic = engine._predicted_states(job)
        store.record_job(spec_family(spec), 10 * int(heuristic) + 1)
        assert engine._predicted_states(job) > heuristic

    def test_run_records_outcomes_into_the_store(self):
        from repro.scheduler import AdaptiveStore, spec_family

        store = AdaptiveStore()
        spec = fig3_precedence()
        engine = BatchEngine(max_workers=1, adaptive=store)
        engine.run([spec])
        assert store.predicted_states(spec_family(spec), -1.0) > 0

    def test_cli_flag_disables_ordering(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        assert (
            main(
                [
                    "batch",
                    "@fig3",
                    "--no-hardest-first",
                    "--jobs",
                    "1",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
