"""Refactor-parity suite: the EngineAdapter core vs the old loops.

ISSUE 5 replaced the three engine-specific DFS loops
(``_search_reference`` / ``_search_fast`` / ``_search_stateclass``)
with one :class:`repro.scheduler.core.SearchCore` driving three
adapters.  Behaviour preservation is the refactor's contract, and this
suite pins it:

* the **paper models** and a **seeded task-set grid** (plus the
  wide-interval nets) run on every adapter under both clock-reset
  policies, and the verdicts, visited-state counts and all
  deterministic :class:`SearchStats` counters must equal the values
  captured from the pre-refactor loops (hard-coded below, measured at
  the commit that introduced the core);
* the two discrete adapters must produce **byte-identical schedules
  and counters** on every pinned workload — the exactness assertion
  the deleted ``_search_reference`` baseline loop used to embody (its
  unique property, folded into tests per the issue);
* a source-inspection test asserts the structural acceptance
  criterion: exactly one search loop, living in ``core.py``, with the
  duplicated ``_search_*``/``_candidates_*``/``_independent_immediate*``
  helpers gone from ``dfs.py``.

ISSUE 7 added the packed ``kernel`` adapter; as a third discrete
engine it is pinned to the *same* pre-refactor expectations as the
reference and incremental adapters on every workload (its deeper
native-vs-pure and fuzzing coverage lives in
``tests/test_kernel_engine.py``).
"""

from __future__ import annotations

import os

import pytest

from repro.blocks import compose
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.spec import paper_examples
from repro.workloads import random_task_set, wide_interval_job_net

RESETS = ("paper", "intermediate")
ENGINES = ("reference", "incremental", "kernel", "stateclass")

#: Deterministic outcome of one pre-refactor search:
#: (feasible, states_visited, states_generated, revisits_skipped,
#:  deadline_prunes, backtracks, reductions, schedule_length, makespan)
#: — captured from the three engine-specific loops immediately before
#: the refactor, identical under both reset policies on these models.
PAPER_PIN = {
    ("fig3", "reference"): (True, 25, 24, 0, 0, 0, 5, 24, 285),
    ("fig3", "incremental"): (True, 25, 24, 0, 0, 0, 5, 24, 285),
    ("fig3", "kernel"): (True, 25, 24, 0, 0, 0, 5, 24, 285),
    ("fig3", "stateclass"): (True, 25, 24, 0, 0, 0, 5, 24, 285),
    ("fig4", "reference"): (True, 143, 142, 0, 0, 0, 4, 142, 280),
    ("fig4", "incremental"): (True, 143, 142, 0, 0, 0, 4, 142, 280),
    ("fig4", "kernel"): (True, 143, 142, 0, 0, 0, 4, 142, 280),
    ("fig4", "stateclass"): (True, 143, 142, 0, 0, 0, 4, 142, 280),
    ("fig8", "reference"): (True, 90, 89, 0, 0, 0, 5, 89, 34),
    ("fig8", "incremental"): (True, 90, 89, 0, 0, 0, 5, 89, 34),
    ("fig8", "kernel"): (True, 90, 89, 0, 0, 0, 5, 89, 34),
    ("fig8", "stateclass"): (
        True, 2813, 3993, 1181, 0, 2723, 140, 89, 35,
    ),
    ("mine-pump", "reference"): (
        True, 3256, 3255, 0, 0, 125, 393, 3130, 29930,
    ),
    ("mine-pump", "incremental"): (
        True, 3256, 3255, 0, 0, 125, 393, 3130, 29930,
    ),
    ("mine-pump", "kernel"): (
        True, 3256, 3255, 0, 0, 125, 393, 3130, 29930,
    ),
    ("mine-pump", "stateclass"): (
        True, 3131, 3130, 0, 0, 0, 363, 3130, 29930,
    ),
}

#: Seeded task-set grid + the wide-interval nets, same capture:
#: (feasible, exhausted, states_visited, states_generated, backtracks,
#:  reductions, deadline_prunes, revisits_skipped).
GRID_CASES = {
    "n2-u0.4-s0": (2, 0.4, 0),
    "n2-u0.8-s1": (2, 0.8, 1),
    "n3-u0.4-s2": (3, 0.4, 2),
    "n3-u0.8-s0": (3, 0.8, 0),
}
GRID_PIN = {
    ("n2-u0.4-s0", "reference"): (True, False, 31, 30, 0, 2, 0, 0),
    ("n2-u0.4-s0", "incremental"): (True, False, 31, 30, 0, 2, 0, 0),
    ("n2-u0.4-s0", "kernel"): (True, False, 31, 30, 0, 2, 0, 0),
    ("n2-u0.4-s0", "stateclass"): (True, False, 31, 30, 0, 2, 0, 0),
    ("n2-u0.8-s1", "reference"): (
        False, False, 120, 150, 119, 2, 0, 31,
    ),
    ("n2-u0.8-s1", "incremental"): (
        False, False, 120, 150, 119, 2, 0, 31,
    ),
    ("n2-u0.8-s1", "kernel"): (
        False, False, 120, 150, 119, 2, 0, 31,
    ),
    ("n2-u0.8-s1", "stateclass"): (
        False, False, 246, 268, 245, 2, 0, 23,
    ),
    ("n3-u0.4-s2", "reference"): (
        False, False, 165, 275, 164, 3, 0, 111,
    ),
    ("n3-u0.4-s2", "incremental"): (
        False, False, 165, 275, 164, 3, 0, 111,
    ),
    ("n3-u0.4-s2", "kernel"): (
        False, False, 165, 275, 164, 3, 0, 111,
    ),
    ("n3-u0.4-s2", "stateclass"): (
        False, False, 491, 685, 490, 3, 0, 195,
    ),
    ("n3-u0.8-s0", "reference"): (
        False, False, 252, 400, 251, 13, 0, 149,
    ),
    ("n3-u0.8-s0", "incremental"): (
        False, False, 252, 400, 251, 13, 0, 149,
    ),
    ("n3-u0.8-s0", "kernel"): (
        False, False, 252, 400, 251, 13, 0, 149,
    ),
    ("n3-u0.8-s0", "stateclass"): (
        False, False, 762, 1069, 761, 37, 0, 308,
    ),
}
WIDE_PIN = {
    (True, "reference"): (True, False, 10, 9, 0, 0, 0, 0),
    (True, "incremental"): (True, False, 10, 9, 0, 0, 0, 0),
    (True, "kernel"): (True, False, 10, 9, 0, 0, 0, 0),
    (True, "stateclass"): (True, False, 10, 9, 0, 0, 0, 0),
    (False, "reference"): (False, False, 68, 114, 67, 0, 0, 47),
    (False, "incremental"): (False, False, 68, 114, 67, 0, 0, 47),
    (False, "kernel"): (False, False, 68, 114, 67, 0, 0, 47),
    (False, "stateclass"): (False, False, 78, 135, 77, 0, 0, 58),
}


def _run(net, engine, reset_policy, **config_kwargs):
    config = SchedulerConfig(
        reset_policy=reset_policy, engine=engine, **config_kwargs
    )
    return PreRuntimeScheduler(net, config).search()


@pytest.fixture(scope="module")
def paper_nets():
    return {
        name: compose(spec).compiled()
        for name, spec in paper_examples().items()
    }


class TestPaperModelPins:
    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "model", ("fig3", "fig4", "fig8", "mine-pump")
    )
    def test_counters_match_pre_refactor(
        self, paper_nets, model, engine, reset_policy
    ):
        result = _run(paper_nets[model], engine, reset_policy)
        stats = result.stats
        assert (
            result.feasible,
            stats.states_visited,
            stats.states_generated,
            stats.revisits_skipped,
            stats.deadline_prunes,
            stats.backtracks,
            stats.reductions,
            result.schedule_length,
            result.makespan,
        ) == PAPER_PIN[(model, engine)], (
            f"{model}/{engine}/{reset_policy} diverged from the "
            "pre-refactor loop"
        )

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize(
        "model", ("fig3", "fig4", "fig8", "mine-pump")
    )
    def test_stateclass_pins_hold_on_pure_fallback(
        self, paper_nets, model, reset_policy
    ):
        """ISSUE 10 moved the dense-time adapter onto the packed
        :class:`repro.tpn.dbm.DbmEngine`; the pre-refactor stateclass
        pins must hold on its pure-Python fallback exactly as they do
        on the compiled core (the EZRT_PURE=1 CI lane)."""
        config = SchedulerConfig(
            reset_policy=reset_policy, engine="stateclass"
        )
        scheduler = PreRuntimeScheduler(paper_nets[model], config)
        scheduler.adapter.engine._core = None
        scheduler.adapter.engine.native = False
        result = scheduler.search()
        stats = result.stats
        assert (
            result.feasible,
            stats.states_visited,
            stats.states_generated,
            stats.revisits_skipped,
            stats.deadline_prunes,
            stats.backtracks,
            stats.reductions,
            result.schedule_length,
            result.makespan,
        ) == PAPER_PIN[(model, "stateclass")], (
            f"{model}/stateclass/{reset_policy} pure fallback "
            "diverged from the pre-refactor loop"
        )

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize(
        "model", ("fig3", "fig4", "fig8", "mine-pump")
    )
    def test_discrete_adapters_agree_exactly(
        self, paper_nets, model, reset_policy
    ):
        """The deleted baseline loop's exactness property, kept alive:
        the reference, incremental and kernel adapters produce
        byte-identical schedules and deterministic counters."""
        ref = _run(paper_nets[model], "reference", reset_policy)
        for engine in ("incremental", "kernel"):
            other = _run(paper_nets[model], engine, reset_policy)
            assert ref.firing_schedule == other.firing_schedule
            ref_stats = ref.stats.as_dict()
            other_stats = other.stats.as_dict()
            for key in ref.stats.WALL_CLOCK_KEYS:
                ref_stats.pop(key)
                other_stats.pop(key)
            assert ref_stats == other_stats, (model, engine)


class TestSeededGridPins:
    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("case", sorted(GRID_CASES))
    def test_grid_point(self, case, engine, reset_policy):
        n, u, seed = GRID_CASES[case]
        net = compose(
            random_task_set(n, u, seed=seed, deadline_slack=0.8)
        ).compiled()
        result = _run(
            net, engine, reset_policy, max_states=200_000
        )
        stats = result.stats
        assert (
            result.feasible,
            result.exhausted,
            stats.states_visited,
            stats.states_generated,
            stats.backtracks,
            stats.reductions,
            stats.deadline_prunes,
            stats.revisits_skipped,
        ) == GRID_PIN[(case, engine)], (
            f"{case}/{engine}/{reset_policy} diverged from the "
            "pre-refactor loop"
        )

    @pytest.mark.parametrize("reset_policy", RESETS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("feasible", (True, False))
    def test_wide_interval_nets(self, feasible, engine, reset_policy):
        net = wide_interval_job_net(feasible=feasible).compile()
        result = _run(net, engine, reset_policy)
        stats = result.stats
        assert (
            result.feasible,
            result.exhausted,
            stats.states_visited,
            stats.states_generated,
            stats.backtracks,
            stats.reductions,
            stats.deadline_prunes,
            stats.revisits_skipped,
        ) == WIDE_PIN[(feasible, engine)]


class TestSingleSearchLoop:
    """Structural acceptance criterion: one loop, in core.py."""

    def _source(self, name: str) -> str:
        import repro.scheduler as pkg

        path = os.path.join(os.path.dirname(pkg.__file__), name)
        with open(path, encoding="utf-8") as handle:
            return handle.read()

    def test_dfs_has_no_search_loop(self):
        source = self._source("dfs.py")
        assert "while stack" not in source
        for relic in (
            "_search_fast",
            "_search_reference",
            "_search_stateclass",
            "_candidates_fast",
            "_candidates_ref",
            "_candidates_stateclass",
            "_independent_immediate",
        ):
            assert relic not in source, (
                f"duplicated helper {relic} resurfaced in dfs.py"
            )

    def test_core_has_exactly_one_search_loop(self):
        source = self._source("core.py")
        assert source.count("while stack") == 1

    def test_every_engine_runs_through_the_core(self):
        from repro.scheduler.core import ADAPTERS, SearchCore

        assert set(ADAPTERS) == set(ENGINES)
        net = compose(paper_examples()["fig3"]).compiled()
        for engine in ENGINES:
            scheduler = PreRuntimeScheduler(
                net, SchedulerConfig(engine=engine)
            )
            assert scheduler.adapter.name == engine
            # the adapter satisfies the protocol surface SearchCore
            # drives (runtime-checkable structural check)
            from repro.scheduler.core import EngineAdapter

            assert isinstance(scheduler.adapter, EngineAdapter)
            assert SearchCore(
                scheduler.adapter, scheduler.config
            ).run().feasible
