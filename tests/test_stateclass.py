"""Tests for the Berthomieu–Diaz state-class graph.

The key check is the cross-validation with the discrete-time engine:
for TPNs with integer bounds, integer firing times suffice for marking
reachability, so the dense-time class graph and the exhaustive
discrete exploration must see exactly the same markings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.tpn import (
    StateClassEngine,
    TimeInterval,
    TimePetriNet,
    build_state_class_graph,
    explore,
)


class TestInitialClass:
    def test_bounds_are_static_intervals(self, simple_net):
        engine = StateClassEngine(simple_net.compile())
        initial = engine.initial_class()
        assert initial.marking == (1, 1, 0, 0)
        assert initial.enabled == (0,)
        assert initial.bounds_of(0) == (2, 4)

    def test_bounds_of_disabled_raises(self, simple_net):
        engine = StateClassEngine(simple_net.compile())
        initial = engine.initial_class()
        with pytest.raises(SchedulingError):
            initial.bounds_of(1)


class TestFiring:
    def test_fire_updates_marking_and_bounds(self, simple_net):
        compiled = simple_net.compile()
        engine = StateClassEngine(compiled)
        after = engine.fire(engine.initial_class(), 0)
        assert after.marking == (0, 0, 1, 0)
        assert after.bounds_of(1) == (3, 3)

    def test_window_rule_blocks_slow_conflict(self):
        """In a class where DUB(fast) < DLB(slow), slow is unfirable."""
        net = TimePetriNet("w")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_transition("slow", TimeInterval(9, 20))
        net.add_transition("fast", TimeInterval(0, 3))
        net.add_arc("p", "slow")
        net.add_arc("slow", "r")
        net.add_arc("q", "fast")
        net.add_arc("fast", "r")
        engine = StateClassEngine(net.compile())
        initial = engine.initial_class()
        firable = {
            net.compile().transition_names[t]
            for t in engine.firable(initial)
        }
        assert firable == {"fast"}

    def test_unfirable_raises(self, simple_net):
        engine = StateClassEngine(simple_net.compile())
        with pytest.raises(SchedulingError):
            engine.fire(engine.initial_class(), 1)

    def test_persistent_bounds_shift(self):
        """After `fast` fires at θ∈[1,2], `slow` keeps θ'=θ−θ_fast."""
        net = TimePetriNet("persist")
        net.add_place("p", marking=1)
        net.add_place("q", marking=1)
        net.add_place("r")
        net.add_place("s")
        net.add_transition("fast", TimeInterval(1, 2))
        net.add_transition("slow", TimeInterval(5, 9))
        net.add_arc("p", "fast")
        net.add_arc("fast", "r")
        net.add_arc("q", "slow")
        net.add_arc("slow", "s")
        compiled = net.compile()
        engine = StateClassEngine(compiled)
        fast = compiled.transition_index["fast"]
        slow = compiled.transition_index["slow"]
        after = engine.fire(engine.initial_class(), fast)
        lower, upper = after.bounds_of(slow)
        assert (lower, upper) == (3, 8)  # [5−2, 9−1]


class TestGraph:
    def test_simple_net_graph(self, simple_net):
        graph = build_state_class_graph(simple_net.compile())
        assert graph.num_classes == 3
        assert graph.complete

    def test_truncation_flag(self, mine_pump_model):
        graph = build_state_class_graph(
            mine_pump_model.net.compile(), max_classes=20
        )
        assert not graph.complete
        assert graph.num_classes == 20

    def test_markings_match_discrete_engine(
        self, simple_net, conflict_net
    ):
        for net in (simple_net, conflict_net):
            compiled = net.compile()
            dense = build_state_class_graph(compiled).markings()
            discrete = explore(
                compiled, earliest_only=False, priority_filter=False
            ).markings()
            assert dense == discrete

    def test_composed_model_markings_match(self):
        """Dense vs discrete agreement on a real composed task net."""
        from repro.blocks import compose
        from repro.spec import SpecBuilder

        spec = (
            SpecBuilder("scg")
            .task("A", computation=1, deadline=4, period=8)
            .task("B", computation=2, deadline=8, period=8)
            .build()
        )
        compiled = compose(spec).net.compile()
        dense = build_state_class_graph(
            compiled, max_classes=5000
        )
        discrete = explore(
            compiled,
            max_states=20000,
            earliest_only=False,
            priority_filter=False,
        )
        assert dense.complete and discrete.complete
        assert dense.markings() == discrete.markings()


@st.composite
def small_nets(draw):
    n_places = draw(st.integers(min_value=2, max_value=4))
    n_transitions = draw(st.integers(min_value=1, max_value=3))
    net = TimePetriNet("h")
    for i in range(n_places):
        net.add_place(f"p{i}", marking=draw(st.integers(0, 1)))
    for j in range(n_transitions):
        eft = draw(st.integers(0, 3))
        net.add_transition(
            f"t{j}", TimeInterval(eft, eft + draw(st.integers(0, 3)))
        )
        inputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        outputs = draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        for p in inputs:
            net.add_arc(f"p{p}", f"t{j}")
        for p in outputs:
            net.add_arc(f"t{j}", f"p{p}")
    return net


class TestCrossValidationProperty:
    @given(small_nets())
    @settings(max_examples=40, deadline=None)
    def test_dense_and_discrete_markings_agree(self, net):
        compiled = net.compile()
        dense = build_state_class_graph(compiled, max_classes=300)
        discrete = explore(
            compiled,
            max_states=2000,
            earliest_only=False,
            priority_filter=False,
        )
        if dense.complete and discrete.complete:
            assert dense.markings() == discrete.markings()

    @given(small_nets())
    @settings(max_examples=30, deadline=None)
    def test_class_bounds_contain_discrete_delays(self, net):
        """Every discrete firing delay lies inside the class bounds."""
        compiled = net.compile()
        from repro.tpn import StateEngine

        dense_engine = StateClassEngine(compiled)
        discrete_engine = StateEngine(compiled)
        initial = dense_engine.initial_class()
        firable = set(dense_engine.firable(initial))
        for cand in discrete_engine.fireable(
            discrete_engine.initial_state(), priority_filter=False
        ):
            if cand.transition in firable:
                lower, upper = initial.bounds_of(cand.transition)
                assert lower <= cand.dlb
