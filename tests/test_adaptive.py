"""Adaptive portfolio seeding, slot parsing and the mixed-engine race.

Covers the ISSUE 5 additions around the engine-aware portfolio:

* ``parse_slot`` — the ``[engine:]policy[:seed]`` grammar;
* model-family fingerprints (net- and spec-side) and the hardness
  heuristic;
* :class:`AdaptiveStore` — recording, ordering, prediction,
  persistence, warm start from ``BENCH_parallel.json``;
* the race itself: mixed ``engine:policy`` slots, a state-class slot
  winning a wide-interval model, winner engine/policy recording, and
  the reference-replay contract on the winner.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.blocks import compose
from repro.errors import SchedulingError
from repro.scheduler import (
    AdaptiveStore,
    ParallelScheduler,
    SchedulerConfig,
    net_family,
    parse_slot,
    predict_states,
    search,
    spec_family,
    validate_with_reference,
)
from repro.spec import paper_examples
from repro.workloads import (
    random_task_set,
    wide_interval_race_net,
)


def _no_ezrt_children() -> bool:
    return not [
        child
        for child in multiprocessing.active_children()
        if child.name.startswith("ezrt-")
    ]


# ----------------------------------------------------------------------
# Slot grammar
# ----------------------------------------------------------------------
class TestParseSlot:
    def test_plain_policy_inherits_engine(self):
        assert parse_slot("latest") == (None, "latest")
        assert parse_slot("random:7") == (None, "random:7")

    def test_engine_prefix(self):
        assert parse_slot("stateclass:earliest") == (
            "stateclass",
            "earliest",
        )
        assert parse_slot("incremental:random:3") == (
            "incremental",
            "random:3",
        )
        assert parse_slot("reference:min-laxity") == (
            "reference",
            "min-laxity",
        )

    def test_engine_without_policy_rejected(self):
        with pytest.raises(SchedulingError):
            parse_slot("stateclass:")

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            parse_slot("stateclass:bogus")
        with pytest.raises(SchedulingError):
            parse_slot("bogus")

    def test_config_accepts_engine_slots(self):
        config = SchedulerConfig(
            parallel=2,
            portfolio=("incremental:earliest", "stateclass:earliest"),
        )
        assert len(config.portfolio) == 2
        with pytest.raises(SchedulingError):
            SchedulerConfig(portfolio=("stateclass:nope",))


# ----------------------------------------------------------------------
# Fingerprints and the hardness heuristic
# ----------------------------------------------------------------------
class TestFamilies:
    def test_net_family_is_deterministic(self):
        net = compose(paper_examples()["fig3"]).compiled()
        assert net_family(net) == net_family(net)

    def test_different_shapes_differ(self):
        fig3 = compose(paper_examples()["fig3"]).compiled()
        wide = wide_interval_race_net().compile()
        assert net_family(fig3) != net_family(wide)

    def test_spec_family_groups_reseeded_sets(self):
        """Same shape, different seed → usually the same family (the
        fingerprint is deliberately lossy); a very different shape
        must always land elsewhere."""
        a = spec_family(random_task_set(4, 0.5, seed=1))
        big = spec_family(
            random_task_set(
                12, 0.95, seed=1, preemptive_fraction=1.0
            )
        )
        assert a != big

    def test_predict_states_is_monotone_in_pressure(self):
        easy = predict_states(random_task_set(2, 0.3, seed=0))
        hard = predict_states(
            random_task_set(
                6, 0.9, seed=0, preemptive_fraction=1.0
            )
        )
        assert hard > easy


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class TestAdaptiveStore:
    def test_record_and_order(self):
        store = AdaptiveStore()
        slots = ("earliest", "random:1", "min-laxity", "latest")
        assert store.order_slots("famX", slots) == slots
        store.record_win("famX", "min-laxity", 1000)
        store.record_win("famX", "min-laxity", 900)
        store.record_win("famX", "latest", 500)
        ordered = store.order_slots("famX", slots)
        assert ordered[0] == "min-laxity"
        assert ordered[1] == "latest"
        # unknown slots keep rotation order behind the winners
        assert ordered[2:] == ("earliest", "random:1")
        # a pure permutation: nothing added or dropped
        assert sorted(ordered) == sorted(slots)

    def test_other_families_unaffected(self):
        store = AdaptiveStore()
        store.record_win("famX", "latest")
        slots = ("earliest", "latest")
        assert store.order_slots("famY", slots) == slots

    def test_predicted_states(self):
        store = AdaptiveStore()
        assert store.predicted_states("famX", 42.0) == 42.0
        store.record_job("famX", 100)
        store.record_job("famX", 300)
        assert store.predicted_states("famX", 42.0) == 200.0

    def test_persistence_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "adaptive.json")
        store = AdaptiveStore(path)
        store.record_win("famX", "latest", 10)
        store.record_job("famX", 50)
        store.save()
        reloaded = AdaptiveStore(path)
        assert reloaded.wins("famX") == {"latest": 1}
        assert reloaded.predicted_states("famX", 0.0) == 50.0

    def test_near_win_keeps_diverse_slot_near_front(self):
        # ISSUE 6 refinement: a slot that keeps reaching definitive
        # verdicts but narrowly loses the race must not be starved
        # behind slots with no record at all
        store = AdaptiveStore()
        slots = ("earliest", "stateclass:earliest", "random:1")
        store.record_win("famX", "earliest", 100)
        store.record_slot_time("famX", "earliest", 0.10)
        store.record_slot_time(
            "famX", "stateclass:earliest", 0.12, near=True
        )
        store.record_slot_time("famX", "random:1", 0.50)
        ordered = store.order_slots("famX", slots)
        assert ordered[0] == "earliest"  # the actual winner
        assert ordered[1] == "stateclass:earliest"  # near win
        assert sorted(ordered) == sorted(slots)

    def test_faster_mean_wall_clock_breaks_ties(self):
        store = AdaptiveStore()
        slots = ("earliest", "latest", "min-laxity")
        store.record_slot_time("famX", "latest", 0.05)
        store.record_slot_time("famX", "latest", 0.15)  # mean 0.10
        store.record_slot_time("famX", "earliest", 0.40)
        ordered = store.order_slots("famX", slots)
        # no wins or near wins anywhere: fastest mean first, and the
        # never-recorded slot (mean 0) comes before both
        assert ordered == ("min-laxity", "latest", "earliest")

    def test_decay_fades_old_wins(self):
        store = AdaptiveStore()
        slots = ("earliest", "latest")
        store.record_win("famX", "earliest")
        # 20 races pass in which 'earliest' never wins again while
        # 'latest' takes one recent win
        for _ in range(20):
            store.decay_family("famX")
        store.record_win("famX", "latest")
        ordered = store.order_slots("famX", slots)
        assert ordered[0] == "latest"
        # decay of an unknown family is a safe no-op
        store.decay_family("famZ")

    def test_slot_time_persistence_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "adaptive.json")
        store = AdaptiveStore(path)
        store.record_win("famX", "latest")
        store.record_slot_time("famX", "latest", 0.25)
        store.record_slot_time("famX", "earliest", 0.75, near=True)
        store.save()
        reloaded = AdaptiveStore(path)
        assert reloaded.order_slots(
            "famX", ("earliest", "latest")
        ) == ("latest", "earliest")

    def test_race_records_slot_times(self, tmp_path):
        # an end-to-end race stores wall-clock for every slot, not
        # just the winner, so losing slots accumulate mean-seconds
        path = os.path.join(tmp_path, "adaptive.json")
        net = compose(paper_examples()["fig4"]).compiled()
        scheduler = ParallelScheduler(
            net,
            SchedulerConfig(parallel=2),
            adaptive=AdaptiveStore(path),
        )
        result = scheduler.search()
        assert result.feasible
        reloaded = AdaptiveStore(path)
        family = net_family(net)
        entries = reloaded._families[family]["slots"]
        timed = [e for e in entries.values() if e.get("runs")]
        assert timed, "no slot recorded wall-clock for the race"
        assert all(e["seconds"] > 0 for e in timed)
        assert _no_ezrt_children()

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = os.path.join(tmp_path, "adaptive.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        store = AdaptiveStore(path)  # must not raise
        assert store.wins("famX") == {}

    def test_warm_start_from_bench_payload(self):
        payload = {
            "results": [
                {
                    "mode": "portfolio",
                    "model": "portfolio-hard-x2",
                    "curve": [
                        {
                            "winner_policy": "random:1",
                            "states_visited": 51290,
                        },
                        {
                            "winner_policy": "min-laxity",
                            "states_visited": 19191,
                        },
                    ],
                },
                {"mode": "worksteal", "model": "other", "curve": []},
                {
                    "mode": "portfolio",
                    "model": "unknown-model",
                    "curve": [{"winner_policy": "latest"}],
                },
            ]
        }
        store = AdaptiveStore()
        recorded = store.warm_start_from_bench(
            payload, {"portfolio-hard-x2": "famHard"}
        )
        assert recorded == 2
        assert store.wins("famHard") == {
            "random:1": 1,
            "min-laxity": 1,
        }

    def test_warm_start_from_real_bench_artifact(self):
        """The checked-in BENCH_parallel.json seeds the hard model's
        family through bench_model_families()."""
        path = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_parallel.json"
        )
        if not os.path.exists(path):
            pytest.skip("no BENCH_parallel.json in this checkout")
        from repro.scheduler import bench_model_families

        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        store = AdaptiveStore()
        recorded = store.warm_start_from_bench(
            payload, bench_model_families()
        )
        assert recorded >= 2
        assert any(store.wins(f) for f in set(
            bench_model_families().values()
        ))


# ----------------------------------------------------------------------
# Adaptive seeding of a live race
# ----------------------------------------------------------------------
class TestAdaptiveRace:
    def test_rotation_is_reordered_by_recorded_wins(self):
        net = compose(paper_examples()["fig3"]).compiled()
        store = AdaptiveStore()
        store.record_win(net_family(net), "min-laxity", 10)
        scheduler = ParallelScheduler(
            net, SchedulerConfig(parallel=4), adaptive=store
        )
        policies = scheduler.portfolio_policies()
        assert policies[0] == "min-laxity"
        assert sorted(policies) == sorted(
            ParallelScheduler(
                net, SchedulerConfig(parallel=4)
            ).portfolio_policies()
        )

    def test_reorder_never_aliases_unseeded_random_slots(self):
        """Unseeded random slots are pinned to their rotation index
        *before* the adaptive permutation — reordering must not land
        two workers on one shuffle stream."""
        net = compose(paper_examples()["fig3"]).compiled()
        store = AdaptiveStore()
        store.record_win(net_family(net), "earliest", 5)
        scheduler = ParallelScheduler(
            net,
            SchedulerConfig(
                parallel=3, portfolio=("random", "earliest")
            ),
            adaptive=store,
        )
        policies = scheduler.portfolio_policies()
        assert policies[0] == "earliest"  # recorded winner first
        randoms = [p for p in policies if p.startswith("random")]
        assert len(randoms) == 2
        assert len(set(randoms)) == 2  # distinct pinned seeds

    def test_race_records_its_winner(self):
        net = compose(paper_examples()["fig4"]).compiled()
        store = AdaptiveStore()
        result = ParallelScheduler(
            net, SchedulerConfig(parallel=2), adaptive=store
        ).search()
        assert result.feasible
        wins = store.wins(net_family(net))
        assert sum(wins.values()) == 1
        assert _no_ezrt_children()


# ----------------------------------------------------------------------
# The mixed-engine portfolio race
# ----------------------------------------------------------------------
class TestMixedEngineRace:
    def test_stateclass_slot_wins_wide_interval_race(self):
        """The dense slot refutes the wide-interval model while the
        delay-enumerating discrete slot is still sweeping integer
        release times — and the verdict matches the serial search."""
        net = wide_interval_race_net().compile()
        serial = search(net, SchedulerConfig(delay_mode="full"))
        assert not serial.feasible and not serial.exhausted
        result = search(
            net,
            SchedulerConfig(
                delay_mode="full",
                parallel=2,
                portfolio=(
                    "incremental:earliest",
                    "stateclass:earliest",
                ),
            ),
        )
        assert result.feasible == serial.feasible
        assert not result.exhausted
        assert result.winner_engine == "stateclass"
        assert result.winner_policy == "earliest"
        assert "winning engine" in result.summary()
        assert _no_ezrt_children()

    def test_mixed_feasible_winner_is_reference_validated(self):
        """A feasible win from a mixed race replays through the
        checked reference engine whichever engine produced it."""
        from repro.workloads import wide_interval_job_net

        net = wide_interval_job_net(
            n_jobs=3, width=8, feasible=True
        ).compile()
        result = search(
            net,
            SchedulerConfig(
                parallel=2,
                portfolio=(
                    "stateclass:earliest",
                    "incremental:earliest",
                ),
            ),
        )
        assert result.feasible
        assert result.winner_engine in ("stateclass", "incremental")
        validate_with_reference(
            net, result.config, result.firing_schedule
        )
        if result.winner_engine == "stateclass":
            assert result.interval_schedule is not None
        assert _no_ezrt_children()

    @pytest.mark.parametrize("reset_policy", ("paper", "intermediate"))
    def test_mixed_race_verdict_parity_on_paper_models(
        self, reset_policy
    ):
        """Engine-aware slots keep the determinism contract on the
        punctual paper models too."""
        model = compose(paper_examples()["fig4"])
        serial = search(
            model.compiled(),
            SchedulerConfig(reset_policy=reset_policy),
        )
        mixed = search(
            model.compiled(),
            SchedulerConfig(
                reset_policy=reset_policy,
                parallel=2,
                portfolio=(
                    "incremental:earliest",
                    "stateclass:earliest",
                ),
            ),
        )
        assert mixed.feasible == serial.feasible
        assert mixed.winner_engine in (
            "incremental",
            "stateclass",
        )
        assert _no_ezrt_children()
