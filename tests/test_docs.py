"""Documentation health: tutorial commands run, links resolve.

Two contracts keep ``docs/`` honest:

* every ``ezrt ...`` line inside a ```` ```bash ```` fence of
  ``docs/tutorial.md`` and ``docs/observability.md`` is executed
  verbatim (in one shared temporary working directory per document,
  in document order, via ``repro.cli.main``) and must succeed — so
  the docs cannot drift from the CLI;
* every relative Markdown link in ``README.md`` and ``docs/*.md``
  must point at an existing file in the repository.

``docs/service.md`` gets the same treatment with a different harness:
its walkthrough is a *shell session* (a background ``ezrt serve``,
``curl`` calls, command substitution), so the whole bash fence is
executed as a real script — against an ephemeral port, with ``ezrt``
shimmed onto ``PATH`` — and must exit 0.  Skipped with a visible
reason on runners without ``bash``/``curl`` or loopback sockets.
"""

from __future__ import annotations

import json
import os
import re
import shlex
import shutil
import socket
import subprocess
import sys

import pytest

from repro.cli import main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..")
)
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
TUTORIAL = os.path.join(DOCS_DIR, "tutorial.md")
OBSERVABILITY = os.path.join(DOCS_DIR, "observability.md")
SERVICE = os.path.join(DOCS_DIR, "service.md")
LINTING = os.path.join(DOCS_DIR, "linting.md")

_FENCE = re.compile(r"```bash\n(.*?)```", re.DOTALL)
_JSON_FENCE = re.compile(r"```json\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _doc_commands(path: str) -> list[str]:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    commands = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("ezrt "):
                commands.append(line)
    return commands


def _tutorial_commands() -> list[str]:
    return _doc_commands(TUTORIAL)


def _run_doc_commands(path, tmp_path, monkeypatch, capsys) -> None:
    monkeypatch.chdir(tmp_path)
    for command in _doc_commands(path):
        argv = shlex.split(command)[1:]
        code = main(argv)
        out = capsys.readouterr()
        assert code == 0, (
            f"doc command failed (rc={code}): {command}\n"
            f"stdout:\n{out.out}\nstderr:\n{out.err}"
        )


class TestTutorialCommands:
    def test_tutorial_has_a_real_walkthrough(self):
        commands = _tutorial_commands()
        assert len(commands) >= 10
        subcommands = {command.split()[1] for command in commands}
        # the walkthrough must exercise the whole pipeline
        assert {
            "validate",
            "compile",
            "schedule",
            "codegen",
            "simulate",
            "batch",
        } <= subcommands
        # ... including the parallel search
        assert any("--parallel" in command for command in commands)

    def test_every_tutorial_command_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        _run_doc_commands(TUTORIAL, tmp_path, monkeypatch, capsys)


class TestObservabilityCommands:
    def test_doc_covers_trace_metrics_and_progress(self):
        commands = _doc_commands(OBSERVABILITY)
        assert any("--trace" in command for command in commands)
        assert any("--progress" in command for command in commands)
        assert any("--parallel" in command for command in commands)

    def test_every_observability_command_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        _run_doc_commands(
            OBSERVABILITY, tmp_path, monkeypatch, capsys
        )
        # the traced commands must have produced valid Chrome JSON
        import json

        for name in ("trace.json", "race.json"):
            with open(tmp_path / name, encoding="utf-8") as fh:
                assert json.load(fh)["traceEvents"]


def _loopback_available() -> bool:
    try:
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


def _free_port() -> int:
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class TestLintingCommands:
    def test_doc_covers_the_lint_workflows(self):
        commands = _doc_commands(LINTING)
        assert any("lint" in command for command in commands)
        assert any("--json" in command for command in commands)
        assert any("--engine kernel" in command for command in commands)
        with open(LINTING, encoding="utf-8") as fh:
            text = fh.read()
        # the rule table documents every code range
        for fragment in ("EZS101", "EZT201", "EZG301", "EZC101"):
            assert fragment in text, f"rule table misses {fragment}"
        assert "python -m repro.lint --self" in text

    def test_every_linting_command_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        _run_doc_commands(LINTING, tmp_path, monkeypatch, capsys)


class TestServiceWalkthrough:
    def _read_doc(self) -> str:
        with open(SERVICE, encoding="utf-8") as fh:
            return fh.read()

    def test_doc_covers_every_endpoint(self):
        text = self._read_doc()
        script = "\n".join(_FENCE.findall(text))
        for path in (
            "/healthz",
            "/jobs",
            "/jobs/job-1",
            "/jobs/job-1/events",
            "/results/",
            "/metrics",
        ):
            assert path in script, f"walkthrough never curls {path}"
        assert "if-none-match" in script  # the 304 demo
        assert "ezrt serve" in script

    def test_walkthrough_executes(self, tmp_path):
        """Run the doc's shell session verbatim (ephemeral port)."""
        for tool in ("bash", "curl"):
            if shutil.which(tool) is None:
                pytest.skip(f"{tool} unavailable on this runner")
        if not _loopback_available():
            pytest.skip("runner forbids binding loopback sockets")
        text = self._read_doc()
        # the ```json fence IS the job.json the session submits
        (tmp_path / "job.json").write_text(
            _JSON_FENCE.findall(text)[0], encoding="utf-8"
        )
        script = "\n".join(_FENCE.findall(text)).replace(
            "8787", str(_free_port())
        )
        # shim `ezrt` (and `python`, for the doc's one-liner) onto
        # PATH so the doc commands run against this checkout
        bin_dir = tmp_path / "bin"
        bin_dir.mkdir()
        src = os.path.join(REPO_ROOT, "src")
        for name, target in (
            ("ezrt", f'exec "{sys.executable}" -m repro.cli "$@"'),
            ("python", f'exec "{sys.executable}" "$@"'),
        ):
            shim = bin_dir / name
            shim.write_text(f"#!/bin/sh\n{target}\n")
            shim.chmod(0o755)
        env = dict(os.environ)
        env["PATH"] = f"{bin_dir}{os.pathsep}{env.get('PATH', '')}"
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else src
        )
        done = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", script],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert done.returncode == 0, (
            f"walkthrough failed (rc={done.returncode})\n"
            f"stdout:\n{done.stdout}\nstderr:\n{done.stderr}"
        )
        # the session's artefacts prove the round-trip happened
        with open(tmp_path / "result.json", encoding="utf-8") as fh:
            result = json.load(fh)
        assert result["status"] == "feasible"
        assert result["firing_schedule"]
        assert "304" in done.stdout  # the conditional re-fetch
        assert '"disposition":"cached"' in done.stdout  # the dedup


def _markdown_files() -> list[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    for name in sorted(os.listdir(DOCS_DIR)):
        if name.endswith(".md"):
            files.append(os.path.join(DOCS_DIR, name))
    return files


class TestDocLinks:
    @pytest.mark.parametrize(
        "path",
        _markdown_files(),
        ids=lambda p: os.path.relpath(p, REPO_ROOT),
    )
    def test_relative_links_resolve(self, path):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure anchor
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                broken.append(target)
        assert not broken, (
            f"{os.path.relpath(path, REPO_ROOT)} has broken links: "
            f"{broken}"
        )

    def test_readme_links_the_docs_tree(self):
        with open(
            os.path.join(REPO_ROOT, "README.md"), encoding="utf-8"
        ) as fh:
            readme = fh.read()
        for page in (
            "docs/architecture.md",
            "docs/scheduling.md",
            "docs/batch.md",
            "docs/tutorial.md",
            "docs/observability.md",
            "docs/service.md",
            "docs/linting.md",
        ):
            assert page in readme, f"README does not link {page}"
