"""Documentation health: tutorial commands run, links resolve.

Two contracts keep ``docs/`` honest:

* every ``ezrt ...`` line inside a ```` ```bash ```` fence of
  ``docs/tutorial.md`` and ``docs/observability.md`` is executed
  verbatim (in one shared temporary working directory per document,
  in document order, via ``repro.cli.main``) and must succeed — so
  the docs cannot drift from the CLI;
* every relative Markdown link in ``README.md`` and ``docs/*.md``
  must point at an existing file in the repository.
"""

from __future__ import annotations

import os
import re
import shlex

import pytest

from repro.cli import main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..")
)
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
TUTORIAL = os.path.join(DOCS_DIR, "tutorial.md")
OBSERVABILITY = os.path.join(DOCS_DIR, "observability.md")

_FENCE = re.compile(r"```bash\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _doc_commands(path: str) -> list[str]:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    commands = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("ezrt "):
                commands.append(line)
    return commands


def _tutorial_commands() -> list[str]:
    return _doc_commands(TUTORIAL)


def _run_doc_commands(path, tmp_path, monkeypatch, capsys) -> None:
    monkeypatch.chdir(tmp_path)
    for command in _doc_commands(path):
        argv = shlex.split(command)[1:]
        code = main(argv)
        out = capsys.readouterr()
        assert code == 0, (
            f"doc command failed (rc={code}): {command}\n"
            f"stdout:\n{out.out}\nstderr:\n{out.err}"
        )


class TestTutorialCommands:
    def test_tutorial_has_a_real_walkthrough(self):
        commands = _tutorial_commands()
        assert len(commands) >= 10
        subcommands = {command.split()[1] for command in commands}
        # the walkthrough must exercise the whole pipeline
        assert {
            "validate",
            "compile",
            "schedule",
            "codegen",
            "simulate",
            "batch",
        } <= subcommands
        # ... including the parallel search
        assert any("--parallel" in command for command in commands)

    def test_every_tutorial_command_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        _run_doc_commands(TUTORIAL, tmp_path, monkeypatch, capsys)


class TestObservabilityCommands:
    def test_doc_covers_trace_metrics_and_progress(self):
        commands = _doc_commands(OBSERVABILITY)
        assert any("--trace" in command for command in commands)
        assert any("--progress" in command for command in commands)
        assert any("--parallel" in command for command in commands)

    def test_every_observability_command_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        _run_doc_commands(
            OBSERVABILITY, tmp_path, monkeypatch, capsys
        )
        # the traced commands must have produced valid Chrome JSON
        import json

        for name in ("trace.json", "race.json"):
            with open(tmp_path / name, encoding="utf-8") as fh:
                assert json.load(fh)["traceEvents"]


def _markdown_files() -> list[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    for name in sorted(os.listdir(DOCS_DIR)):
        if name.endswith(".md"):
            files.append(os.path.join(DOCS_DIR, name))
    return files


class TestDocLinks:
    @pytest.mark.parametrize(
        "path",
        _markdown_files(),
        ids=lambda p: os.path.relpath(p, REPO_ROOT),
    )
    def test_relative_links_resolve(self, path):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure anchor
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                broken.append(target)
        assert not broken, (
            f"{os.path.relpath(path, REPO_ROOT)} has broken links: "
            f"{broken}"
        )

    def test_readme_links_the_docs_tree(self):
        with open(
            os.path.join(REPO_ROOT, "README.md"), encoding="utf-8"
        ) as fh:
            readme = fh.read()
        for page in (
            "docs/architecture.md",
            "docs/scheduling.md",
            "docs/batch.md",
            "docs/tutorial.md",
            "docs/observability.md",
        ):
            assert page in readme, f"README does not link {page}"
